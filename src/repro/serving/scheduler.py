"""Microbatching scheduler over :class:`repro.serving.BatchedGenerator`.

Callers queue :class:`~repro.serving.engine.BatchRequest`\\ s with
:meth:`BatchScheduler.submit` and receive tickets; :meth:`BatchScheduler.run`
packs the queue into FIFO microbatches bounded by ``max_batch_size``
*sequences* (a request with ``n`` choices occupies ``n`` slots), hands
each microbatch to the generator — which retires finished sequences
mid-batch — and returns results keyed by ticket. With
``continuous=True`` the microbatch barrier disappears entirely: the
whole queue is handed to the generator's retire-and-admit loop, which
refills freed slots mid-decode. This is the serving-layer shape of the
paper's hosted-API deployments: many callers' prompts share one model,
and throughput comes from batching, not from making any single request
faster. A shared :class:`~repro.serving.prefix.PrefixCache` additionally
lets requests that repeat a prompt header (few-shot sweeps) skip
re-prefilling it.

Every submitted request is timestamped against the scheduler's
:class:`~repro.reliability.clock.Clock`, and its **queue-wait**
(submission → dispatch into the decode batch) is accumulated in
:class:`SchedulerStats` — that is the number that lets a p99 latency be
decomposed into time-waiting vs time-decoding. The async gateway's
tests drive this on a :class:`~repro.reliability.clock.VirtualClock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import GenerationError
from repro.models.gpt import GPTModel
from repro.reliability.clock import Clock, SystemClock
from repro.serving.engine import (
    BatchedGenerator,
    BatchRequest,
    BatchResult,
    StepHook,
)
from repro.serving.prefix import PrefixCache


@dataclass
class SchedulerStats:
    """Counters describing one scheduler's lifetime of work.

    ``refills``, ``prefix_hits`` and ``prefix_reused_tokens`` mirror the
    generator's counters after each :meth:`BatchScheduler.run` so
    serving callers can read everything from one place.
    ``queue_wait_total``/``queue_wait_max`` aggregate per-request
    submission→dispatch waits in clock seconds; ``cancelled`` counts
    requests retired mid-stream by an ``on_step`` hook.
    """

    submitted: int = 0
    completed: int = 0
    cancelled: int = 0
    microbatches: int = 0
    peak_batch: int = 0
    sequential_fallbacks: int = 0
    prompt_tokens: int = 0
    generated_tokens: int = 0
    refills: int = 0
    prefix_hits: int = 0
    prefix_reused_tokens: int = 0
    draft_tokens: int = 0
    draft_accepted_tokens: int = 0
    verify_forwards: int = 0
    queue_wait_total: float = 0.0
    queue_wait_max: float = 0.0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of draft-proposed tokens the target model accepted."""
        if self.draft_tokens == 0:
            return 0.0
        return self.draft_accepted_tokens / self.draft_tokens


class BatchScheduler:
    """FIFO microbatching front-end for batched generation.

    ``max_batch_size`` caps the number of *sequences* (sum of each
    request's ``n``) decoded together. A single request wider than the
    cap still runs — alone in its own microbatch — so oversized requests
    degrade throughput rather than deadlock the queue. ``continuous``
    switches :meth:`run` from barriered microbatches to the generator's
    retire-and-admit loop; ``prefix_cache`` threads a shared prompt
    K/V cache through every request; ``clock`` timestamps queue waits
    (defaults to real time). A ``draft_model`` swaps the generator for
    :class:`~repro.serving.speculative.SpeculativeGenerator` — greedy
    requests then advance up to ``speculative_k + 1`` tokens per target
    forward with token-identical output (barriered microbatches only;
    ``draft_prefix_cache`` gives the draft its own prompt K/V reuse).

    Shared state: the pending queue, ticket counter, submission stamps,
    and ``stats`` are unsynchronized instance attributes (see the
    :mod:`repro.analysis.concurrency` shared-state report). The async
    gateway respects this by giving each replica its own scheduler and
    driving it from exactly one dispatch task at a time; any other
    concurrent submitters need external serialization.
    """

    def __init__(
        self,
        model: GPTModel,
        max_batch_size: int = 8,
        prefill_chunk: Optional[int] = None,
        prefix_cache: Optional[PrefixCache] = None,
        continuous: bool = False,
        clock: Optional[Clock] = None,
        draft_model: Optional[GPTModel] = None,
        speculative_k: int = 4,
        draft_prefix_cache: Optional[PrefixCache] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise GenerationError("max_batch_size must be positive")
        if draft_model is not None and continuous:
            raise GenerationError(
                "speculative decoding uses barriered microbatches; "
                "continuous=True is not supported with a draft_model"
            )
        if draft_model is not None:
            from repro.serving.speculative import SpeculativeGenerator

            # Duck-typed stand-in: same generate()/stats surface.
            self.generator = SpeculativeGenerator(
                model,
                draft_model,
                k=speculative_k,
                prefill_chunk=prefill_chunk,
                prefix_cache=prefix_cache,
                draft_prefix_cache=draft_prefix_cache,
            )
        else:
            self.generator = BatchedGenerator(
                model, prefill_chunk=prefill_chunk, prefix_cache=prefix_cache
            )
        self.max_batch_size = max_batch_size
        self.continuous = continuous
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.stats = SchedulerStats()
        self._queue: List[Tuple[int, BatchRequest]] = []
        self._next_ticket = 0
        self._submitted_at: Dict[int, float] = {}

    def submit(self, request: BatchRequest) -> int:
        """Queue a request; returns a ticket identifying its result."""
        ticket = self._next_ticket
        self._next_ticket += 1
        self._queue.append((ticket, request))
        self._submitted_at[ticket] = self.clock.monotonic()
        self.stats.submitted += 1
        return ticket

    def run(self, on_step: Optional[StepHook] = None) -> Dict[int, BatchResult]:
        """Drain the queue; returns ``{ticket: result}`` for all of it.

        ``on_step`` (continuous mode only) is forwarded to
        :meth:`~repro.serving.engine.BatchedGenerator.generate_continuous`
        with *queue positions translated to this run's request order* —
        the gateway uses it to cancel requests mid-stream and to kill a
        replica under fault injection.
        """
        if self.continuous:
            return self._run_continuous(on_step)
        if on_step is not None:
            raise GenerationError(
                "on_step hooks require a continuous scheduler "
                "(BatchScheduler(continuous=True))"
            )
        results: Dict[int, BatchResult] = {}
        while self._queue:
            batch = self._take_microbatch()
            self.stats.microbatches += 1
            now = self.clock.monotonic()
            for ticket, _ in batch:
                self._record_wait(ticket, now)
            occupancy = sum(request.n for _, request in batch)
            self.stats.peak_batch = max(self.stats.peak_batch, occupancy)
            batch_results = self.generator.generate([r for _, r in batch])
            for (ticket, request), result in zip(batch, batch_results):
                self._record(ticket, request, result, results)
        self._mirror_generator_stats()
        return results

    def _run_continuous(
        self, on_step: Optional[StepHook] = None
    ) -> Dict[int, BatchResult]:
        """Drain the queue through the retire-and-admit decode loop."""
        results: Dict[int, BatchResult] = {}
        batch, self._queue = self._queue, []
        if not batch:
            return results
        self.stats.microbatches += 1

        def record_admit(index: int) -> None:
            self._record_wait(batch[index][0], self.clock.monotonic())

        try:
            batch_results = self.generator.generate_continuous(
                [r for _, r in batch],
                max_active=self.max_batch_size,
                on_step=on_step,
                on_admit=record_admit,
            )
        finally:
            # A replica killed mid-run never dispatched the remainder;
            # drop their stamps so a reused scheduler doesn't leak them.
            for ticket, _ in batch:
                self._submitted_at.pop(ticket, None)
        for (ticket, request), result in zip(batch, batch_results):
            self._record(ticket, request, result, results)
        self.stats.peak_batch = max(
            self.stats.peak_batch, self.generator.stats.peak_active
        )
        self._mirror_generator_stats()
        return results

    def _record_wait(self, ticket: int, now: float) -> None:
        stamp = self._submitted_at.pop(ticket, None)
        if stamp is None:
            return
        wait = now - stamp
        self.stats.queue_wait_total += wait
        self.stats.queue_wait_max = max(self.stats.queue_wait_max, wait)

    def _record(
        self,
        ticket: int,
        request: BatchRequest,
        result: BatchResult,
        results: Dict[int, BatchResult],
    ) -> None:
        results[ticket] = result
        if result.cancelled:
            self.stats.cancelled += 1
            return
        self.stats.completed += 1
        self.stats.prompt_tokens += len(request.prompt_ids)
        self.stats.generated_tokens += sum(len(seq) for seq in result.sequences)
        if not result.batched:
            self.stats.sequential_fallbacks += 1

    def _mirror_generator_stats(self) -> None:
        gen = self.generator.stats
        self.stats.refills = gen.refills
        self.stats.prefix_hits = gen.prefix_hits
        self.stats.prefix_reused_tokens = gen.prefix_reused_tokens
        self.stats.draft_tokens = gen.draft_tokens
        self.stats.draft_accepted_tokens = gen.draft_accepted_tokens
        self.stats.verify_forwards = gen.verify_forwards

    def _take_microbatch(self) -> List[Tuple[int, BatchRequest]]:
        """Pop a FIFO prefix of the queue within the occupancy budget."""
        batch: List[Tuple[int, BatchRequest]] = []
        occupancy = 0
        while self._queue:
            ticket, request = self._queue[0]
            if batch and occupancy + request.n > self.max_batch_size:
                break
            batch.append(self._queue.pop(0))
            occupancy += request.n
        return batch
