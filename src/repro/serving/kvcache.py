"""Preallocated K/V slabs for incremental decoding.

The original growing cache layout appended each decode step's keys and
values with ``np.concatenate``, which reallocates and copies the entire
cache on every token — O(n²) memory traffic over a generation of n
tokens. A :class:`KVCache` instead owns one preallocated slab per layer
and writes new columns *in place*; when the slab fills up, capacity
doubles, so the total bytes copied over a whole generation is O(n)
(amortized constant per token), exactly the dynamic-array argument.

The slab is deliberately free of any ``repro`` imports so the neural
layers can use it without an import cycle (``repro.nn`` is imported by
``repro.serving``, not the other way around): ``MultiHeadAttention``
recognizes it by duck typing (anything with ``append``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: capacity of the first allocation when the caller gives no hint
DEFAULT_CAPACITY = 64


class KVCache:
    """One layer's growing K/V slab with amortized-O(1) appends.

    Arrays have shape ``(batch, heads, capacity, head_dim)`` and are
    allocated lazily on the first :meth:`append`, so the same object
    works for any batch/head geometry. ``append`` writes the new
    columns in place and returns zero-copy views of the live prefix —
    drop-in replacements for the concatenated arrays of the legacy
    dict layout.

    Shared state: ``k``/``v``/``length`` mutate in place on every
    append, and the returned views alias the slab; one decode loop must
    own a cache exclusively (the shared-state audit in
    :mod:`repro.analysis.concurrency` tracks these writes).
    """

    __slots__ = ("k", "v", "length", "_initial_capacity")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.k: Optional[np.ndarray] = None
        self.v: Optional[np.ndarray] = None
        self.length = 0
        self._initial_capacity = capacity

    def __len__(self) -> int:
        return self.length

    @property
    def capacity(self) -> int:
        """Columns the slab can hold before the next doubling."""
        return 0 if self.k is None else self.k.shape[2]

    @property
    def nbytes(self) -> int:
        """Bytes held by the slab (zero before the first append)."""
        if self.k is None:
            return 0
        return self.k.nbytes + self.v.nbytes

    def append(
        self, k: np.ndarray, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Write new columns; return views of all live keys/values.

        ``k`` and ``v`` have shape (batch, heads, new, head_dim). The
        returned arrays are views into the slab of shape
        (batch, heads, length, head_dim) — valid until the next append
        that triggers a growth reallocation.
        """
        batch, heads, new, head_dim = k.shape
        if self.k is None:
            capacity = max(self._initial_capacity, new)
            shape = (batch, heads, capacity, head_dim)
            self.k = np.zeros(shape, dtype=k.dtype)
            self.v = np.zeros(shape, dtype=v.dtype)
        elif self.k.shape[0] != batch:
            raise ValueError(
                f"batch size changed mid-generation: slab has "
                f"{self.k.shape[0]} rows, append got {batch}"
            )
        if self.length + new > self.k.shape[2]:
            capacity = max(2 * self.k.shape[2], self.length + new)
            grown_k = np.zeros(
                (batch, heads, capacity, head_dim), dtype=self.k.dtype
            )
            grown_v = np.zeros_like(grown_k)
            grown_k[:, :, : self.length] = self.k[:, :, : self.length]
            grown_v[:, :, : self.length] = self.v[:, :, : self.length]
            self.k, self.v = grown_k, grown_v
        self.k[:, :, self.length : self.length + new] = k
        self.v[:, :, self.length : self.length + new] = v
        self.length += new
        return self.k[:, :, : self.length], self.v[:, :, : self.length]

    def truncate(self, length: int) -> None:
        """Rewind the live prefix to ``length`` columns.

        Speculative decoding appends a whole draft run optimistically
        and, when the target model rejects a tail, rolls the cache back
        to the last verified token. The slab itself is untouched — the
        rejected columns simply fall outside the live prefix and are
        overwritten by the next :meth:`append` — so rejection costs no
        memory traffic at all.
        """
        if length < 0 or length > self.length:
            raise ValueError(
                f"cannot truncate to {length}: live prefix has {self.length} columns"
            )
        self.length = length
