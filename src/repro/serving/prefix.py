"""Token-trie prefix cache: reuse KV states across prompts.

The application workloads (text-to-SQL sweeps, few-shot imputation,
CodexDB candidate waves) drive the model with prompts that share a long
identical prefix — the instruction header plus the worked-example block
— and differ only in the final row or question. Because attention keys
and values at position ``t`` depend only on tokens ``0..t`` (and
positions are absolute), the per-layer K/V of a shared prefix is
*identical* across all prompts that start with it. This module caches
those K/V columns in a token trie so one prefill of the header serves
the whole sweep; each later request only prefills its suffix.

Layout: one trie node per token, holding that position's K/V columns
for every layer (shape ``(heads, head_dim)`` each). Lookup walks the
trie as deep as the prompt matches and stacks the columns back into
``(heads, match, head_dim)`` arrays; insert only allocates nodes for
the unseen suffix, so repeated inserts of prompts sharing a header
store the header once. Total bytes are bounded by ``max_bytes`` with
LRU eviction of leaf nodes (evicting a leaf never orphans a deeper
entry, so every surviving path stays reachable).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GenerationError

#: default byte budget — generous for the test-scale models here
DEFAULT_MAX_BYTES = 32 * 1024 * 1024

#: per-layer (k, v) column pair, each (heads, head_dim)
_Column = Tuple[np.ndarray, np.ndarray]
#: per-layer (k, v) span pair, each (heads, tokens, head_dim)
Span = Tuple[np.ndarray, np.ndarray]


@dataclass
class PrefixCacheStats:
    """Hit/miss/byte accounting for one :class:`PrefixCache`."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    reused_tokens: int = 0
    inserted_tokens: int = 0
    evictions: int = 0
    oversized: int = 0
    bytes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _Node:
    """One cached token position: K/V columns plus trie links."""

    __slots__ = ("token", "parent", "children", "kv", "nbytes", "last_used")

    def __init__(
        self,
        token: Optional[int],
        parent: Optional["_Node"],
        kv: Optional[List[_Column]] = None,
    ) -> None:
        self.token = token
        self.parent = parent
        self.children: Dict[int, "_Node"] = {}
        self.kv = kv or []
        self.nbytes = sum(k.nbytes + v.nbytes for k, v in self.kv)
        self.last_used = 0


class PrefixCache:
    """LRU-bounded token-trie cache of per-layer prompt K/V states.

    Shared state: the trie, LRU clock, byte budget, and ``stats`` all
    mutate on every lookup/insert with no synchronization — lookups are
    writes here (they touch recency and hit counters), so even
    read-mostly concurrent use races. The
    :mod:`repro.analysis.concurrency` audit reports every such site;
    async callers must serialize access.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise GenerationError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self.stats = PrefixCacheStats()
        self._root = _Node(token=None, parent=None)
        self._tick = 0

    def __len__(self) -> int:
        """Number of cached token positions."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += len(node.children)
            stack.extend(node.children.values())
        return count

    def peek_length(self, token_ids: Sequence[int]) -> int:
        """Longest cached prefix length, without touching LRU or stats."""
        node = self._root
        depth = 0
        for token in token_ids:
            child = node.children.get(int(token))
            if child is None:
                break
            node = child
            depth += 1
        return depth

    def lookup(
        self, token_ids: Sequence[int], max_len: Optional[int] = None
    ) -> Tuple[int, Optional[List[Span]]]:
        """Return ``(match_len, per-layer (k, v) spans)`` for the prompt.

        ``max_len`` caps the match (callers typically pass
        ``len(prompt) - 1`` so at least one token remains to prefill,
        which is what produces the next-token logits). A miss returns
        ``(0, None)``. Matched nodes are LRU-touched.
        """
        self.stats.lookups += 1
        self._tick += 1
        limit = len(token_ids) if max_len is None else min(max_len, len(token_ids))
        node = self._root
        path: List[_Node] = []
        for token in token_ids[:limit]:
            child = node.children.get(int(token))
            if child is None:
                break
            child.last_used = self._tick
            path.append(child)
            node = child
        if not path:
            self.stats.misses += 1
            return 0, None
        self.stats.hits += 1
        self.stats.reused_tokens += len(path)
        layers: List[Span] = []
        for layer in range(len(path[0].kv)):
            keys = np.stack([n.kv[layer][0] for n in path], axis=1)
            values = np.stack([n.kv[layer][1] for n in path], axis=1)
            layers.append((keys, values))
        return len(path), layers

    def insert(self, token_ids: Sequence[int], layers: Sequence[Span]) -> int:
        """Store the prompt's K/V; returns the number of new positions.

        ``layers`` holds one ``(k, v)`` pair per model layer, each of
        shape (heads, len(token_ids), head_dim) — the live columns of a
        prefilled cache. Positions already in the trie are only
        LRU-touched; the unseen suffix is copied in (the slab arrays
        are reused by the engine afterwards, so views must not leak).

        A prompt whose K/V alone exceed ``max_bytes`` is rejected up
        front (counted in ``stats.oversized``) instead of being stored:
        inserting it first and evicting after would transiently blow the
        byte budget, copy every column for nothing, and then LRU-evict
        the *existing* entries along with the prompt's own header —
        leaving the cache cold.
        """
        if sum(k.nbytes + v.nbytes for k, v in layers) > self.max_bytes:
            self.stats.oversized += 1
            return 0
        self._tick += 1
        node = self._root
        added = 0
        for position, token in enumerate(token_ids):
            token = int(token)
            child = node.children.get(token)
            if child is None:
                kv = [
                    (k[:, position].copy(), v[:, position].copy())
                    for k, v in layers
                ]
                child = _Node(token=token, parent=node, kv=kv)
                node.children[token] = child
                self.stats.bytes += child.nbytes
                self.stats.inserted_tokens += 1
                added += 1
            child.last_used = self._tick
            node = child
        if self.stats.bytes > self.max_bytes:
            self._evict()
        return added

    def clear(self) -> None:
        """Drop every cached position (stats are kept)."""
        self._root = _Node(token=None, parent=None)
        self.stats.bytes = 0

    def _evict(self) -> None:
        """Evict LRU leaves until the byte budget holds again."""
        heap: List[Tuple[int, int, _Node]] = []
        serial = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            for child in node.children.values():
                if child.children:
                    stack.append(child)
                else:
                    heapq.heappush(heap, (child.last_used, serial, child))
                    serial += 1
        while self.stats.bytes > self.max_bytes and heap:
            last_used, _, node = heapq.heappop(heap)
            if node.children or node.parent is None:
                continue  # grew a child since, or already detached
            if node.last_used != last_used:
                # Touched since we enqueued it: re-enter at its new age.
                heapq.heappush(heap, (node.last_used, serial, node))
                serial += 1
                continue
            parent = node.parent
            del parent.children[node.token]
            node.parent = None
            self.stats.bytes -= node.nbytes
            self.stats.evictions += 1
            if not parent.children and parent is not self._root:
                heapq.heappush(heap, (parent.last_used, serial, parent))
                serial += 1


def common_prefix_length(prompts: Sequence[Sequence[int]]) -> int:
    """Length of the longest token prefix shared by *all* prompts."""
    if not prompts:
        return 0
    first = prompts[0]
    shared = len(first)
    for ids in prompts[1:]:
        limit = min(shared, len(ids))
        depth = 0
        while depth < limit and ids[depth] == first[depth]:
            depth += 1
        shared = depth
        if shared == 0:
            return 0
    return shared
