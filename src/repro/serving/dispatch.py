"""Batch-aware dispatch helpers for application subsystems.

The application layers (CodexDB, text-to-SQL, data wrangling) talk to a
completion *client* — sometimes the real :class:`repro.api.CompletionClient`,
sometimes a reliability or fault-injection wrapper. :func:`complete_many`
lets them batch per-prompt hot loops opportunistically: clients that
expose ``complete_batch`` serve all prompts through the batched engine,
anything else transparently falls back to a per-prompt loop, so wrappers
never have to implement batching to stay compatible.
"""

from __future__ import annotations

from typing import List, Sequence


def complete_many(client, engine: str, prompts: Sequence[str], **kwargs) -> List:
    """Complete every prompt, batched when the client supports it.

    Returns one :class:`~repro.api.client.CompletionResponse` per prompt,
    in prompt order. ``kwargs`` are forwarded unchanged to the client's
    ``complete_batch`` (or per-prompt ``complete``) call.
    """
    batch = getattr(client, "complete_batch", None)
    if batch is not None:
        return list(batch(engine, list(prompts), **kwargs))
    # repro: noqa[per-prompt-loop] — this IS the designated fallback loop.
    return [client.complete(engine, prompt, **kwargs) for prompt in prompts]
