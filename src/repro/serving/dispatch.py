"""Batch-aware dispatch helpers for application subsystems.

The application layers (CodexDB, text-to-SQL, data wrangling) talk to a
completion *client* — sometimes the real :class:`repro.api.CompletionClient`,
sometimes a reliability or fault-injection wrapper. :func:`complete_many`
lets them batch per-prompt hot loops opportunistically: clients that
expose ``complete_batch`` serve all prompts through the batched engine,
anything else transparently falls back to a per-prompt loop, so wrappers
never have to implement batching to stay compatible.
"""

from __future__ import annotations

from typing import List, Sequence


def complete_many(client, engine: str, prompts: Sequence[str], **kwargs) -> List:
    """Complete every prompt, batched when the client supports it.

    Returns one :class:`~repro.api.client.CompletionResponse` per prompt,
    in prompt order. ``kwargs`` are forwarded unchanged to the client's
    ``complete_batch`` (or per-prompt ``complete``) call.
    """
    batch = getattr(client, "complete_batch", None)
    if batch is not None:
        return list(batch(engine, list(prompts), **kwargs))
    # repro: noqa[per-prompt-loop] — this IS the designated fallback loop.
    return [client.complete(engine, prompt, **kwargs) for prompt in prompts]


def engine_serving_stats(client, engine: str) -> dict:
    """Serving-side counters for one engine, as a plain float dict.

    Unwraps reliability/fault wrappers (anything holding its inner
    client as ``.client``) until it finds an object exposing
    ``engine_stats``; returns ``{}`` when no layer does. The dict is the
    application-report shape: prompt/completion token totals plus the
    prefix-cache and continuous-batching counters.
    """
    inner = client
    while inner is not None and getattr(inner, "engine_stats", None) is None:
        inner = getattr(inner, "client", None)
    if inner is None:
        return {}
    stats = inner.engine_stats(engine)
    return {
        "requests": float(stats.requests),
        "prompt_tokens": float(stats.prompt_tokens),
        "completion_tokens": float(stats.completion_tokens),
        "prefix_hits": float(getattr(stats, "prefix_hits", 0)),
        "prefix_reused_tokens": float(getattr(stats, "prefix_reused_tokens", 0)),
        "batch_refills": float(getattr(stats, "batch_refills", 0)),
        "draft_tokens": float(getattr(stats, "draft_tokens", 0)),
        "draft_accepted_tokens": float(getattr(stats, "draft_accepted_tokens", 0)),
        "verify_forwards": float(getattr(stats, "verify_forwards", 0)),
        "acceptance_rate": float(getattr(stats, "acceptance_rate", 0.0)),
        "queue_wait_seconds": float(getattr(stats, "queue_wait_seconds", 0.0)),
        "cache_lookups": float(getattr(stats, "cache_lookups", 0)),
        "cache_exact_hits": float(getattr(stats, "cache_exact_hits", 0)),
        "cache_similarity_hits": float(getattr(stats, "cache_similarity_hits", 0)),
        "cache_hit_rate": float(getattr(stats, "cache_hit_rate", 0.0)),
        "cache_skipped_prompt_tokens": float(
            getattr(stats, "cache_skipped_prompt_tokens", 0)
        ),
        "cache_skipped_completion_tokens": float(
            getattr(stats, "cache_skipped_completion_tokens", 0)
        ),
    }
