"""Open-loop async load generation against a serving gateway.

A *closed-loop* client (send, wait, send again) self-throttles: when the
server slows down, the offered load drops, and saturation hides. The
load generator here is **open-loop**: arrivals fire on a seeded Poisson
(exponential-interarrival) schedule regardless of how the gateway is
coping, which is the arrival process under which admission control and
load shedding actually earn their keep — offered load past capacity
*must* show up as shed requests, not as quietly stretching arrival gaps.

:func:`run_open_loop` drives one arrival rate for a fixed duration and
reports :class:`LoadReport` (p50/p99 latency of *accepted* work, goodput,
shed rate, queue-wait share); :func:`sweep` repeats it across a list of
rates to trace the saturation curve that the ``BENCH_gateway`` benchmark
commits. Everything runs on an :class:`~repro.reliability.aclock.AsyncClock`
— under an :class:`~repro.reliability.aclock.AsyncVirtualClock` a
minute-long sweep takes milliseconds and is bit-for-bit reproducible
from its seed.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    GatewayOverloadError,
    GenerationError,
    ReproError,
)
from repro.reliability.aclock import AsyncClock
from repro.serving.gateway import Gateway, GatewayRequest, GatewayResult
from repro.utils.rng import SeededRNG


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by nearest-rank on sorted data.

    Nearest-rank is deliberate: it returns an *observed* latency, never
    an interpolated one, so a reported p99 is a request that happened.
    """
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise GenerationError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * len(ordered))) - 1))
    if q == 0:
        rank = 0
    return ordered[rank]


@dataclass
class LoadReport:
    """What one open-loop run at a fixed arrival rate measured."""

    offered_rate: float
    duration: float
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    expired: int = 0
    failed: int = 0
    latencies: List[float] = field(default_factory=list)
    queue_waits: List[float] = field(default_factory=list)

    @property
    def goodput(self) -> float:
        """Completed requests per second of clock time."""
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted requests refused at admission."""
        return self.shed / self.submitted if self.submitted else 0.0

    @property
    def p50_latency(self) -> float:
        return percentile(self.latencies, 50)

    @property
    def p99_latency(self) -> float:
        return percentile(self.latencies, 99)

    @property
    def p99_queue_wait(self) -> float:
        return percentile(self.queue_waits, 99)

    def as_dict(self) -> dict:
        """Flat scalars for benchmark emission (no raw sample lists)."""
        return {
            "offered_rate": self.offered_rate,
            "duration": self.duration,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "expired": self.expired,
            "failed": self.failed,
            "goodput": self.goodput,
            "shed_rate": self.shed_rate,
            "p50_latency": self.p50_latency,
            "p99_latency": self.p99_latency,
            "p99_queue_wait": self.p99_queue_wait,
        }


class OpenLoopLoad:
    """One open-loop run: seeded Poisson arrivals at a fixed rate.

    ``make_request`` is called with the arrival index to produce each
    :class:`~repro.serving.gateway.GatewayRequest` — vary prompts,
    tenants, priorities, or deadlines per arrival there. Shared state
    discipline: the report is mutated only from synchronous sections of
    coroutines on the event loop (one arrival task per request), never
    from threads.
    """

    def __init__(
        self,
        gateway: Gateway,
        make_request: Callable[[int], GatewayRequest],
        rate: float,
        duration: float,
        clock: AsyncClock,
        seed: int = 0,
    ) -> None:
        if rate <= 0:
            raise GenerationError("arrival rate must be positive (req/s)")
        if duration <= 0:
            raise GenerationError("duration must be positive (seconds)")
        self.gateway = gateway
        self.make_request = make_request
        self.rate = rate
        self.duration = duration
        self.clock = clock
        self.rng = SeededRNG(seed).spawn("loadgen")
        self.report = LoadReport(offered_rate=rate, duration=duration)

    async def run(self) -> LoadReport:
        """Fire arrivals for ``duration`` seconds; await all outcomes."""
        tasks: List[asyncio.Task] = []
        start = self.clock.monotonic()
        index = 0
        while True:
            gap = self._interarrival()
            if self.clock.monotonic() + gap - start >= self.duration:
                break
            await self.clock.sleep(gap)
            tasks.append(asyncio.ensure_future(self._one(index)))
            index += 1
        if tasks:
            await asyncio.gather(*tasks)
        return self.report

    def _interarrival(self) -> float:
        """Exponential gap with mean ``1/rate`` (inverse-CDF sampling)."""
        u = self.rng.uniform(1e-12, 1.0)
        return -math.log(u) / self.rate

    async def _one(self, index: int) -> None:
        request = self.make_request(index)
        submitted_at = self.clock.monotonic()
        try:
            result = await self.gateway.submit(request)
        except (GatewayOverloadError, CircuitOpenError):
            self._count_shed()
        except DeadlineExceededError:
            self._count_expired()
        except ReproError:
            self._count_failed()
        else:
            self._count_completed(result, self.clock.monotonic() - submitted_at)

    # -- synchronous report mutation (atomic under the event loop) ---------
    def _count_shed(self) -> None:
        self.report.submitted += 1
        self.report.shed += 1

    def _count_expired(self) -> None:
        self.report.submitted += 1
        self.report.expired += 1

    def _count_failed(self) -> None:
        self.report.submitted += 1
        self.report.failed += 1

    def _count_completed(self, result: GatewayResult, latency: float) -> None:
        self.report.submitted += 1
        self.report.completed += 1
        self.report.latencies.append(latency)
        self.report.queue_waits.append(result.queue_wait)


async def run_open_loop(
    gateway: Gateway,
    make_request: Callable[[int], GatewayRequest],
    rate: float,
    duration: float,
    clock: AsyncClock,
    seed: int = 0,
) -> LoadReport:
    """Convenience wrapper: one :class:`OpenLoopLoad` run."""
    load = OpenLoopLoad(gateway, make_request, rate, duration, clock, seed=seed)
    return await load.run()


async def sweep(
    make_gateway: Callable[[], Gateway],
    make_request: Callable[[int], GatewayRequest],
    rates: Sequence[float],
    duration: float,
    clock: AsyncClock,
    seed: int = 0,
    settle: Optional[Callable[[Gateway, LoadReport], None]] = None,
) -> List[LoadReport]:
    """Trace the saturation curve: one open-loop run per arrival rate.

    Each rate gets a **fresh** gateway from ``make_gateway`` (started
    and stopped here) so runs do not contaminate each other's queues or
    breaker states; ``settle`` (optional) observes the gateway after
    each run before it is torn down. Seeds are derived per rate index so
    adding a rate never reshuffles the arrivals of the others.
    """
    reports: List[LoadReport] = []
    for offset, rate in enumerate(rates):
        gateway = make_gateway()
        await gateway.start()
        try:
            report = await run_open_loop(
                gateway, make_request, rate, duration, clock, seed=seed + offset
            )
        finally:
            await gateway.stop()
        if settle is not None:
            settle(gateway, report)
        reports.append(report)
    return reports
