"""Speculative decoding: a draft model proposes, the target verifies.

Plain autoregressive decoding pays one full target-model forward per
token. Speculative decoding (the "draft-and-verify" scheme named as the
standard decode-speed rung by the implementation survey in PAPERS.md,
arXiv 2403.18969) breaks that serialization for *greedy* decoding
without changing a single output token:

1. a small **draft** model proposes ``k`` tokens autoregressively
   (cheap — the draft has fewer layers);
2. the **target** model scores the whole proposed run in **one** chunked
   forward over ``k + 1`` positions (barely more expensive than a
   single-token decode step, because the per-forward Python/BLAS
   overhead dominates at these widths);
3. the proposals are compared against the target's own greedy picks
   position by position: the accepted prefix is emitted as-is, the first
   mismatch is replaced by the **target's** token (so output never
   depends on draft quality), and when every proposal survives, the
   verify forward's last logits yield a free *bonus* token.

Because every emitted token is the target's greedy argmax given exactly
the tokens before it, the output is token-identical to
:class:`~repro.serving.engine.BatchedGenerator` — the draft only decides
how many tokens each target forward advances. Acceptance rate therefore
buys throughput, never correctness.

Cache discipline: draft and target each keep their own KV cache. The
single-sequence path (:func:`speculative_generate`) uses
:class:`~repro.serving.kvcache.KVCache` slabs — accepted runs advance in
place, rejected tails are rolled back with
:meth:`~repro.serving.kvcache.KVCache.truncate`. The batched path
(:class:`SpeculativeGenerator`) uses the slotted per-row layout of the
serving engine, where truncation is a per-row *length* rewind: stale
columns beyond a row's verified length are never attended (the blocked
mask hides them) and the next verify chunk overwrites them in place.

Sampled requests fall back to the plain engine (speculative identity
here is a greedy-argmax argument; matching a sampler's RNG stream
token-for-token is a different contract), as do requests that do not
fit either model's context window.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import Tensor, cross_entropy, no_grad
from repro.errors import GenerationError
from repro.generation.decoding import (
    GenerationConfig,
    TokenConstraint,
    _next_token,
    generate,
)
from repro.models.config import ModelConfig
from repro.models.gpt import GPTModel
from repro.nn.attention import chunk_causal_mask
from repro.serving.engine import (
    BatchedGenerator,
    BatchRequest,
    BatchResult,
    _ChoiceState,
    _choice_config,
)
from repro.serving.prefix import PrefixCache
from repro.utils.rng import SeededRNG

#: default number of tokens the draft proposes per verify forward
DEFAULT_DRAFT_K = 4

#: filler id for rows whose draft aborted proposing early (constraint
#: dead end); never credited as accepted because the accept scan stops
#: before reaching it.
_PAD_TOKEN = 0


class SpeculativeGenerator:
    """Batched speculative decoding with the serving engine's contract.

    Drop-in alternative to :class:`~repro.serving.engine.BatchedGenerator`
    for the microbatching scheduler: same :meth:`generate` signature,
    same :class:`~repro.serving.engine.BatchResult` ordering, same
    ``stats`` object (the plain engine it wraps shares the instance, so
    fallback work and speculative work land in one
    :class:`~repro.serving.engine.GeneratorStats`).

    Greedy requests that fit both context windows run the speculative
    loop — including constraint masks (applied to draft proposals *and*
    verify picks) and ``n > 1`` choice forking. Everything else is
    served by the wrapped plain engine, so callers never see a behavior
    cliff. ``draft_prefix_cache`` gives the draft model its own prompt
    K/V reuse (draft and target states are different shapes and must
    never share a cache).

    Shared state: ``stats`` and both prefix caches mutate without
    synchronization, exactly like the plain engine — one caller at a
    time (see the :mod:`repro.analysis.concurrency` audit).
    """

    def __init__(
        self,
        model: GPTModel,
        draft: GPTModel,
        k: int = DEFAULT_DRAFT_K,
        prefill_chunk: Optional[int] = None,
        prefix_cache: Optional[PrefixCache] = None,
        draft_prefix_cache: Optional[PrefixCache] = None,
    ) -> None:
        if k <= 0:
            raise GenerationError("speculative k must be positive")
        if draft.config.vocab_size != model.config.vocab_size:
            raise GenerationError(
                f"draft vocab {draft.config.vocab_size} != "
                f"target vocab {model.config.vocab_size}"
            )
        self.model = model
        self.draft = draft
        self.k = k
        self.engine = BatchedGenerator(
            model, prefill_chunk=prefill_chunk, prefix_cache=prefix_cache
        )
        self.draft_engine = BatchedGenerator(
            draft, prefill_chunk=prefill_chunk, prefix_cache=draft_prefix_cache
        )
        # One stats surface: speculative counters and fallback work
        # accumulate on the same GeneratorStats instance.
        self.stats = self.engine.stats

    @property
    def prefix_cache(self) -> Optional[PrefixCache]:
        return self.engine.prefix_cache

    def generate(self, requests: Sequence[BatchRequest]) -> List[BatchResult]:
        """Serve ``requests`` in one batch; order follows the input."""
        results: List[Optional[BatchResult]] = [None] * len(requests)
        speculative: List[int] = []
        plain: List[int] = []
        for i, request in enumerate(requests):
            if request.config.strategy == "greedy" and self._fits(request):
                speculative.append(i)
            else:
                plain.append(i)
        if plain:
            served = self.engine.generate([requests[i] for i in plain])
            for i, result in zip(plain, served):
                results[i] = result
        if speculative:
            self.model.eval()
            self.draft.eval()
            with no_grad():
                served = self._run([requests[i] for i in speculative])
            for i, result in zip(speculative, served):
                results[i] = result
        return [r for r in results if r is not None]

    def _fits(self, request: BatchRequest) -> bool:
        max_len = min(
            self.model.config.max_seq_len, self.draft.config.max_seq_len
        )
        return len(request.prompt_ids) + request.config.max_new_tokens <= max_len

    # -- the speculative batch loop ----------------------------------------
    def _run(self, requests: Sequence[BatchRequest]) -> List[BatchResult]:
        prompt_lengths = np.array([len(r.prompt_ids) for r in requests])
        max_seq_len = min(
            self.model.config.max_seq_len, self.draft.config.max_seq_len
        )
        # Verify chunks may overshoot a row's own prompt+max_new end by
        # up to k - 1 columns (rows near retirement ride along with the
        # batch's uniform chunk width), so the slabs get k spare columns.
        capacity = int(
            min(
                max(
                    len(r.prompt_ids) + r.config.max_new_tokens
                    for r in requests
                )
                + self.k,
                max_seq_len,
            )
        )
        tcaches = self.model.init_cache(
            batch_size=len(requests), capacity=capacity
        )
        dcaches = self.draft.init_cache(
            batch_size=len(requests), capacity=capacity
        )
        self.engine._seed_shared_prefix(requests)
        next_logits = self.engine._prefill(requests, prompt_lengths, tcaches)
        self.draft_engine._seed_shared_prefix(requests)
        self.draft_engine._prefill(requests, prompt_lengths, dcaches)

        # Fork each request's prefilled caches across its n choices.
        repeats = np.array([r.n for r in requests])
        for cache in tcaches + dcaches:
            cache["k"] = np.repeat(cache["k"], repeats, axis=0)
            cache["v"] = np.repeat(cache["v"], repeats, axis=0)
        next_logits = np.repeat(next_logits, repeats, axis=0)
        states = [
            _ChoiceState(
                request_index=i,
                choice_index=j,
                config=_choice_config(request.config, j),
                constraint=request.constraint,
                rng=SeededRNG(request.config.seed + j),
            )
            for i, request in enumerate(requests)
            for j in range(request.n)
        ]
        # committed[r] tokens per row = prompt + generated; invariant
        # between rounds: all but the LAST committed token sit verified
        # in the target cache (t_lens), the draft cache may trail by one
        # more (d_lens).
        prompts = [
            list(requests[i].prompt_ids)
            for i, request in enumerate(requests)
            for _ in range(request.n)
        ]
        t_lens = np.repeat(prompt_lengths, repeats)
        d_lens = np.repeat(prompt_lengths, repeats)

        results = [BatchResult(sequences=[]) for _ in requests]
        # Bootstrap: commit each row's first token from the prefill
        # logits (the plain engine's _advance handles stop/max/retire).
        keep = self.engine._advance(states, next_logits, results)
        states, prompts, (t_lens, d_lens) = self._compact(
            states, prompts, keep, (t_lens, d_lens), tcaches + dcaches
        )

        while states:
            self.stats.peak_active = max(self.stats.peak_active, len(states))
            committed_len = t_lens + 1
            remaining = np.array(
                [
                    s.config.max_new_tokens - len(s.generated)
                    for s in states
                ]
            )
            k_eff = int(
                min(
                    self.k,
                    max_seq_len - int(committed_len.max()),
                    int(remaining.max()) - 1,
                )
            )
            k_eff = max(k_eff, 0)
            proposals, valid_counts = self._propose(
                states, prompts, committed_len, d_lens, dcaches, k_eff
            )
            self.stats.draft_tokens += int(valid_counts.sum())
            logits = self._verify(
                states, prompts, committed_len, tcaches, k_eff, proposals
            )
            keep, accepted = self._accept(
                states, logits, proposals, valid_counts, k_eff, results
            )
            t_lens = committed_len + accepted
            if k_eff > 0:
                # Draft valid prefix: catch-up covered everything
                # committed, plus the accepted proposals it actually
                # forwarded (never the last one — its forward is skipped).
                d_lens = committed_len + np.minimum(accepted, k_eff - 1)
            states, prompts, (t_lens, d_lens) = self._compact(
                states, prompts, keep, (t_lens, d_lens), tcaches + dcaches
            )

        for result in results:
            result.sequences.sort(key=lambda pair: pair[0])
            result.sequences[:] = [seq for _, seq in result.sequences]
        return results

    @staticmethod
    def _compact(
        states: List[_ChoiceState],
        prompts: List[List[int]],
        keep: np.ndarray,
        lengths: Tuple[np.ndarray, ...],
        caches: list,
    ) -> Tuple[List[_ChoiceState], List[List[int]], Tuple[np.ndarray, ...]]:
        """Drop retired rows from states, prompts, lengths and caches."""
        if keep.all():
            return states, prompts, lengths
        states = [s for s, k in zip(states, keep) if k]
        prompts = [p for p, k in zip(prompts, keep) if k]
        lengths = tuple(length[keep] for length in lengths)
        for cache in caches:
            cache["k"] = cache["k"][keep]
            cache["v"] = cache["v"][keep]
        return states, prompts, lengths

    def _propose(
        self,
        states: List[_ChoiceState],
        prompts: List[List[int]],
        committed_len: np.ndarray,
        d_lens: np.ndarray,
        dcaches: list,
        k_eff: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draft-propose ``k_eff`` tokens per row; returns (B, k_eff) ids.

        First the draft catches up on committed tokens it has not seen
        (the previous round's correction/bonus token, and — after an
        all-accepted round — the last proposal it never forwarded): the
        catch-up chunk is right-aligned on each row's committed end, and
        rows needing fewer new columns simply rewrite their trailing
        verified columns with identical K/V, keeping the batch
        rectangular. Then proposals are decoded one draft forward at a
        time. ``valid_counts[r]`` < ``k_eff`` marks rows whose
        constraint cut proposing short (padding fills the rest).
        """
        rows = len(states)
        if k_eff == 0:
            return (
                np.zeros((rows, 0), dtype=np.int64),
                np.zeros(rows, dtype=np.int64),
            )
        committed = [
            prompts[r] + states[r].generated for r in range(rows)
        ]
        width = int((committed_len - d_lens).max())
        ids = np.zeros((rows, width), dtype=np.int64)
        for r in range(rows):
            ids[r] = committed[r][-width:]
        positions = (committed_len - width)[:, None] + np.arange(width)
        kv_len = int(committed_len.max())
        blocked = (
            np.arange(kv_len)[None, None, None, :]
            > positions[:, None, :, None]
        )
        logits = self.draft.forward_chunk(
            ids,
            positions,
            dcaches,
            blocked=blocked,
            write_cols=positions,
            kv_len=kv_len,
        )
        d_next = logits.data[:, -1]

        plain = all(s.constraint is None for s in states)
        proposals = np.full((rows, k_eff), _PAD_TOKEN, dtype=np.int64)
        valid_counts = np.zeros(rows, dtype=np.int64)
        alive = np.ones(rows, dtype=bool)
        for j in range(k_eff):
            if plain:
                picks: List[Optional[int]] = list(np.argmax(d_next, axis=-1))
            else:
                picks = [
                    _next_token(
                        d_next[r],
                        states[r].generated + list(proposals[r, :j][: valid_counts[r]]),
                        states[r].config,
                        states[r].constraint,
                        states[r].rng,
                    )
                    if alive[r]
                    else None
                    for r in range(rows)
                ]
            for r, pick in enumerate(picks):
                if not alive[r]:
                    continue
                if pick is None:
                    alive[r] = False
                    continue
                proposals[r, j] = int(pick)
                valid_counts[r] += 1
            if j == k_eff - 1 or not alive.any():
                break
            step_ids = proposals[:, j][:, None]
            cols = committed_len + j
            kv_len = int(cols.max()) + 1
            blocked = (
                np.arange(kv_len)[None, :] > cols[:, None]
            )[:, None, None, :]
            logits = self.draft.forward_chunk(
                step_ids,
                cols[:, None],
                dcaches,
                blocked=blocked,
                write_cols=cols,
                kv_len=kv_len,
            )
            d_next = logits.data[:, 0]
        return proposals, valid_counts

    def _verify(
        self,
        states: List[_ChoiceState],
        prompts: List[List[int]],
        committed_len: np.ndarray,
        tcaches: list,
        k_eff: int,
        proposals: np.ndarray,
    ) -> np.ndarray:
        """One target forward over [last committed, proposals] per row."""
        rows = len(states)
        width = k_eff + 1
        ids = np.zeros((rows, width), dtype=np.int64)
        for r in range(rows):
            last = (
                states[r].generated[-1]
                if states[r].generated
                else prompts[r][-1]
            )
            ids[r, 0] = last
            ids[r, 1:] = proposals[r]
        positions = (committed_len - 1)[:, None] + np.arange(width)
        kv_len = int(committed_len.max()) + k_eff
        blocked = (
            np.arange(kv_len)[None, None, None, :]
            > positions[:, None, :, None]
        )
        hidden = self.model.encode_chunk(
            ids,
            positions,
            tcaches,
            blocked=blocked,
            write_cols=positions,
            kv_len=kv_len,
        )
        logits = self.model.logits_from_hidden(Tensor(hidden.data))
        self.stats.verify_forwards += 1
        return logits.data

    def _accept(
        self,
        states: List[_ChoiceState],
        logits: np.ndarray,
        proposals: np.ndarray,
        valid_counts: np.ndarray,
        k_eff: int,
        results: List[BatchResult],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scan each row's verify logits; emit tokens, retire finishers.

        Position ``j`` of a row's verify logits is the target's
        distribution after the committed tokens plus proposals
        ``0..j-1``, so the target's pick there is the *true* next token
        given everything before it — matching the proposal extends the
        accepted run, mismatching emits the pick as the correction and
        ends the round, and surviving all ``k_eff`` positions emits the
        final pick as the bonus token.
        """
        rows = len(states)
        keep = np.ones(rows, dtype=bool)
        accepted = np.zeros(rows, dtype=np.int64)
        plain = all(
            s.config.strategy == "greedy" and s.constraint is None
            for s in states
        )
        greedy_ids = np.argmax(logits, axis=-1) if plain else None
        for r, state in enumerate(states):
            for j in range(k_eff + 1):
                if greedy_ids is not None:
                    token: Optional[int] = int(greedy_ids[r, j])
                else:
                    token = _next_token(
                        logits[r, j],
                        state.generated,
                        state.config,
                        state.constraint,
                        state.rng,
                    )
                if token is None or token in state.config.stop_ids:
                    keep[r] = False
                    break
                state.generated.append(token)
                self.stats.generated_tokens += 1
                if len(state.generated) >= state.config.max_new_tokens:
                    keep[r] = False
                matched = (
                    j < valid_counts[r] and token == int(proposals[r, j])
                )
                if matched:
                    accepted[r] += 1
                    self.stats.draft_accepted_tokens += 1
                if not keep[r] or not matched:
                    break
            if not keep[r]:
                self.stats.retired_sequences += 1
                results[state.request_index].sequences.append(
                    (state.choice_index, state.generated)
                )
        return keep, accepted


def speculative_generate(
    model: GPTModel,
    draft: GPTModel,
    prompt_ids: Sequence[int],
    config: Optional[GenerationConfig] = None,
    constraint: Optional[TokenConstraint] = None,
    k: int = DEFAULT_DRAFT_K,
) -> List[int]:
    """Single-sequence speculative decode over slab KV caches.

    Token-identical to :func:`repro.generation.generate` for greedy
    configs; sampled configs and prompts that do not fit either context
    window delegate to it outright. Both models keep
    :class:`~repro.serving.kvcache.KVCache` slabs: accepted runs advance
    them in place and rejected tails are rolled back with
    :meth:`~repro.serving.kvcache.KVCache.truncate` — the slab-layout
    statement of "rejection is free".
    """
    if k <= 0:
        raise GenerationError("speculative k must be positive")
    config = config or GenerationConfig()
    if not prompt_ids:
        raise GenerationError("prompt must contain at least one token")
    max_len = min(model.config.max_seq_len, draft.config.max_seq_len)
    fits = len(prompt_ids) + config.max_new_tokens <= max_len
    if config.strategy != "greedy" or not fits:
        return generate(model, prompt_ids, config, constraint)

    rng = SeededRNG(config.seed)
    model.eval()
    draft.eval()
    generated: List[int] = []
    with no_grad():
        tcaches = model.init_cache()
        dcaches = draft.init_cache()
        n = len(prompt_ids)
        prompt = np.array([prompt_ids], dtype=np.int64)
        positions = np.arange(n)[None, :]
        blocked = chunk_causal_mask(0, n)[None, None]
        logits = model.forward_chunk(prompt, positions, tcaches, blocked=blocked)
        draft.forward_chunk(prompt, positions, dcaches, blocked=blocked)
        token = _next_token(
            logits.data[0, -1], generated, config, constraint, rng
        )
        if token is None or token in config.stop_ids:
            return generated
        generated.append(token)

        while len(generated) < config.max_new_tokens:
            committed = list(prompt_ids) + generated
            remaining = config.max_new_tokens - len(generated)
            k_eff = min(k, remaining - 1, max_len - len(committed))
            proposals = _draft_proposals(
                draft, dcaches, committed, generated, config, constraint,
                rng, k_eff,
            )
            chunk = [committed[-1]] + proposals
            start = tcaches[0].length
            stop = start + len(chunk)
            logits = model.forward_chunk(
                np.array([chunk], dtype=np.int64),
                np.arange(start, stop)[None, :],
                tcaches,
                blocked=chunk_causal_mask(start, stop)[None, None],
            )
            scores = logits.data[0]
            accepted = 0
            done = False
            for j in range(len(chunk)):
                token = _next_token(
                    scores[j], generated, config, constraint, rng
                )
                if token is None or token in config.stop_ids:
                    done = True
                    break
                generated.append(token)
                if len(generated) >= config.max_new_tokens:
                    done = True
                matched = j < len(proposals) and token == proposals[j]
                if matched:
                    accepted += 1
                if done or not matched:
                    break
            if done:
                break
            # Roll both slabs back to the verified prefix: the target
            # wrote len(chunk) optimistic columns, the draft wrote the
            # catch-up plus all but the last proposal.
            verified = len(prompt_ids) + len(generated) - 1
            for cache in tcaches:
                cache.truncate(verified)
            for cache in dcaches:
                cache.truncate(min(cache.length, verified))
    return generated


def _draft_proposals(
    draft: GPTModel,
    dcaches: list,
    committed: List[int],
    generated: List[int],
    config: GenerationConfig,
    constraint: Optional[TokenConstraint],
    rng: SeededRNG,
    k_eff: int,
) -> List[int]:
    """Catch the draft cache up to ``committed`` and propose ``k_eff`` ids."""
    if k_eff <= 0:
        return []
    start = dcaches[0].length
    pending = committed[start:]
    logits = draft.forward_chunk(
        np.array([pending], dtype=np.int64),
        np.arange(start, len(committed))[None, :],
        dcaches,
        blocked=chunk_causal_mask(start, len(committed))[None, None],
    )
    d_next = logits.data[0, -1]
    proposals: List[int] = []
    for j in range(k_eff):
        pick = _next_token(
            d_next, generated + proposals, config, constraint, rng
        )
        if pick is None:
            break
        proposals.append(int(pick))
        if pick in config.stop_ids or j == k_eff - 1:
            break
        logits = draft.forward_chunk(
            np.array([[pick]], dtype=np.int64),
            np.array([[len(committed) + j]], dtype=np.int64),
            dcaches,
        )
        d_next = logits.data[0, -1]
    return proposals


def draft_config(config: ModelConfig, num_layers: int = 1) -> ModelConfig:
    """A draft variant of ``config``: same geometry, fewer layers."""
    if num_layers <= 0 or num_layers > config.num_layers:
        raise GenerationError(
            f"draft num_layers must be in 1..{config.num_layers}"
        )
    return dataclasses.replace(config, num_layers=num_layers)


def distill_draft(
    model: GPTModel,
    prompts: Sequence[Sequence[int]],
    num_layers: int = 1,
    steps: int = 60,
    lr: float = 3e-3,
    max_new_tokens: int = 16,
    seed: int = 1,
) -> GPTModel:
    """Train a small draft GPT to imitate ``model``'s greedy output.

    Generates the target's greedy continuations for ``prompts`` (one
    batched pass), then trains a fresh ``num_layers``-layer GPT with a
    causal-LM loss on the prompt+continuation rows. Because the verify
    step makes draft quality a pure throughput knob, even this few-step
    distillation is enough to push acceptance high on the workload it
    was fit to — the draft only has to predict the target's argmax, not
    its full distribution.
    """
    from repro.training.data import IGNORE_INDEX
    from repro.training.optim import AdamW

    if not prompts:
        raise GenerationError("distillation needs at least one prompt")
    draft = GPTModel(draft_config(model.config, num_layers), seed=seed)
    engine = BatchedGenerator(model)
    gen_config = GenerationConfig(max_new_tokens=max_new_tokens)
    served = engine.generate(
        [BatchRequest(list(p), gen_config) for p in prompts]
    )
    rows = [
        list(p) + result.sequences[0]
        for p, result in zip(prompts, served)
    ]
    width = max(len(row) for row in rows)
    ids = np.zeros((len(rows), width), dtype=np.int64)
    labels = np.full((len(rows), width), IGNORE_INDEX, dtype=np.int64)
    for i, row in enumerate(rows):
        ids[i, : len(row)] = row
        labels[i, : len(row) - 1] = row[1:]

    optimizer = AdamW(draft.parameters(), lr=lr)
    draft.train()
    for _ in range(steps):
        logits = draft(ids)
        flat = logits.reshape(-1, draft.config.vocab_size)
        loss = cross_entropy(
            flat, labels.reshape(-1), ignore_index=IGNORE_INDEX
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.clip_grad_norm(1.0)
        optimizer.step()
    draft.eval()
    return draft
