"""Semantic completion cache: skip decode for repeated (and near-duplicate) prompts.

The :class:`~repro.serving.prefix.PrefixCache` reuses KV *state* but
every request still pays full decode. The data-management workloads
this repo serves (few-shot text-to-SQL sweeps, imputation, NeuralDB QA)
are dominated by repeated and near-duplicate prompts, so the layer
above it caches whole *completions*: a byte-budgeted LRU keyed on
``(engine, prompt, decode-params)`` with two lookup tiers —

* **exact** — a dict hit on the full key. The cached value was produced
  by the same engine under the same decoding parameters (and decoding
  is seeded-deterministic here), so returning it is byte-identical to
  re-decoding; exact hits are always safe and always on.
* **similarity** — a cosine search over normalized pooled embeddings of
  the prompt text within the same group (engine). A hit above
  ``similarity_threshold`` returns *another prompt's* completion, which
  can change outputs — so similarity hits are **opt-in per call**
  (``allow_similar=True``) and never consulted otherwise.

The cache is generic over values: :class:`repro.api.CompletionClient`
stores :class:`~repro.api.client.CompletionResponse` objects keyed by
prompt text, while the :class:`~repro.serving.gateway.Gateway` stores
raw token sequences keyed by prompt ids
(:func:`completion_request_key`). Entries are grouped (by engine) so
model-identity invalidation can flush one engine without cooling the
rest, exactly like the prefix cache.

Shared state: the entry dict, LRU clock, byte counter, and ``stats``
all mutate on every lookup/insert with no synchronization — lookups
are writes (they touch recency and hit counters), so concurrent use
requires external serialization. The gateway respects this by calling
the cache only from synchronous methods on its event loop.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.errors import GenerationError
from repro.utils.text import simple_word_tokenize

#: default byte budget — completions are small; this holds thousands
DEFAULT_MAX_BYTES = 8 * 1024 * 1024

#: default cosine threshold for similarity hits (inclusive)
DEFAULT_SIMILARITY_THRESHOLD = 0.9

#: dimensionality of the model-free hashed prompt embedding
EMBEDDING_DIM = 256

#: fixed per-entry bookkeeping charge (key tuple, links, counters)
_ENTRY_OVERHEAD = 64


def hashed_embedding(text: str, dim: int = EMBEDDING_DIM) -> np.ndarray:
    """Normalized hashed bag-of-words embedding of ``text``.

    Deterministic and model-free (CRC32 token buckets), so the cache
    needs no encoder to measure prompt similarity: near-duplicate
    prompts — same few-shot header, one changed row — land within a few
    buckets of each other and cosine close to 1. Callers needing a
    learned notion of similarity pass their own ``embedder``.
    """
    vector = np.zeros(dim, dtype=np.float64)
    for token in simple_word_tokenize(text.lower()):
        vector[zlib.crc32(token.encode("utf-8")) % dim] += 1.0
    norm = float(np.linalg.norm(vector))
    return vector / norm if norm > 0.0 else vector


def completion_request_key(request: Any) -> Optional[Hashable]:
    """Exact-match cache key for a serving-layer ``BatchRequest``.

    Covers everything that determines the output: prompt token ids,
    choice count, and the full decoding configuration (decoding is
    seeded, so sampled requests replay deterministically too). Returns
    ``None`` for constrained requests — a ``TokenConstraint`` is
    stateful and has no stable identity, so those are never cached.
    """
    if request.constraint is not None:
        return None
    config = request.config
    return (
        tuple(int(t) for t in request.prompt_ids),
        request.n,
        config.max_new_tokens,
        config.strategy,
        config.temperature,
        config.top_k,
        config.top_p,
        tuple(config.stop_ids),
        config.seed,
    )


@dataclass
class SemanticCacheStats:
    """Hit/miss/byte accounting for one :class:`SemanticCache`."""

    lookups: int = 0
    exact_hits: int = 0
    similarity_hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    oversized: int = 0
    bytes: int = 0
    skipped_prompt_tokens: int = 0
    skipped_completion_tokens: int = 0

    @property
    def hits(self) -> int:
        return self.exact_hits + self.similarity_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def skipped_tokens(self) -> int:
        """Prefill + decode tokens the cache saved the engines."""
        return self.skipped_prompt_tokens + self.skipped_completion_tokens


@dataclass(frozen=True)
class CacheHit:
    """One successful lookup: the value plus how it was found."""

    value: Any
    kind: str  # "exact" | "similarity"
    similarity: float
    prompt_tokens: int
    completion_tokens: int


class _Entry:
    """One cached completion."""

    __slots__ = (
        "key",
        "group",
        "value",
        "embedding",
        "nbytes",
        "prompt_tokens",
        "completion_tokens",
        "last_used",
    )

    def __init__(
        self,
        key: Hashable,
        group: str,
        value: Any,
        embedding: Optional[np.ndarray],
        nbytes: int,
        prompt_tokens: int,
        completion_tokens: int,
    ) -> None:
        self.key = key
        self.group = group
        self.value = value
        self.embedding = embedding
        self.nbytes = nbytes
        self.prompt_tokens = prompt_tokens
        self.completion_tokens = completion_tokens
        self.last_used = 0


def _estimate_nbytes(value: Any) -> int:
    """Byte-size estimate for a cached value.

    Understands the two value shapes the serving stack stores —
    response-like objects (``.choices`` with ``.text``) and token
    sequences (lists of int lists) — and falls back to ``repr`` length
    for anything else.
    """
    choices = getattr(value, "choices", None)
    if choices is not None:
        return sum(len(choice.text) for choice in choices) + _ENTRY_OVERHEAD
    if isinstance(value, (list, tuple)) and all(
        isinstance(item, (list, tuple)) for item in value
    ):
        return sum(8 * len(item) for item in value) + _ENTRY_OVERHEAD
    if isinstance(value, str):
        return len(value) + _ENTRY_OVERHEAD
    return len(repr(value)) + _ENTRY_OVERHEAD


class SemanticCache:
    """Byte-budgeted LRU cache of whole completions, in two tiers.

    See the module docstring for the exact/similarity split. Eviction
    is deterministic: entries age on a logical tick (every lookup that
    touches them refreshes it) and the least-recently-used entry is
    evicted first, with insertion order breaking ties — a seeded
    workload always leaves the same survivors.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        similarity_threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
        embedder: Optional[Callable[[str], np.ndarray]] = None,
    ) -> None:
        if max_bytes <= 0:
            raise GenerationError("max_bytes must be positive")
        if not 0.0 < similarity_threshold <= 1.0:
            raise GenerationError("similarity_threshold must be in (0, 1]")
        self.max_bytes = max_bytes
        self.similarity_threshold = similarity_threshold
        self.embedder = embedder if embedder is not None else hashed_embedding
        self.stats = SemanticCacheStats()
        self._entries: Dict[Hashable, _Entry] = {}
        self._groups: Dict[str, Dict[Hashable, _Entry]] = {}
        self._tick = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> List[Hashable]:
        """Cached keys in insertion order (testing/introspection)."""
        return list(self._entries)

    # -- lookup ------------------------------------------------------------
    def lookup(
        self,
        key: Hashable,
        group: str = "default",
        text: Optional[str] = None,
        allow_similar: bool = False,
        embedding: Optional[np.ndarray] = None,
    ) -> Optional[CacheHit]:
        """Return a :class:`CacheHit` for ``key`` (or a near-duplicate).

        The exact tier matches ``key`` alone. The similarity tier runs
        only with ``allow_similar=True`` and a ``text`` (or a
        precomputed normalized ``embedding``): the best cosine within
        ``group`` at or above ``similarity_threshold`` wins, earliest
        insertion breaking ties. A miss returns ``None``.
        """
        self.stats.lookups += 1
        self._tick += 1
        entry = self._entries.get(key)
        if entry is not None:
            entry.last_used = self._tick
            self.stats.exact_hits += 1
            self.stats.skipped_prompt_tokens += entry.prompt_tokens
            self.stats.skipped_completion_tokens += entry.completion_tokens
            return CacheHit(
                value=entry.value,
                kind="exact",
                similarity=1.0,
                prompt_tokens=entry.prompt_tokens,
                completion_tokens=entry.completion_tokens,
            )
        if allow_similar and (text is not None or embedding is not None):
            if embedding is None:
                embedding = self.embedder(text)
            best, best_sim = self._best_similar(group, embedding)
            if best is not None:
                best.last_used = self._tick
                self.stats.similarity_hits += 1
                self.stats.skipped_prompt_tokens += best.prompt_tokens
                self.stats.skipped_completion_tokens += best.completion_tokens
                return CacheHit(
                    value=best.value,
                    kind="similarity",
                    similarity=best_sim,
                    prompt_tokens=best.prompt_tokens,
                    completion_tokens=best.completion_tokens,
                )
        self.stats.misses += 1
        return None

    def _best_similar(
        self, group: str, embedding: np.ndarray
    ) -> Tuple[Optional[_Entry], float]:
        """Highest-cosine entry of ``group`` at/above the threshold.

        Iterates the group in insertion order with a strict-greater
        update, so ties resolve to the earliest-inserted entry —
        deterministic under any workload.
        """
        best: Optional[_Entry] = None
        best_sim = 0.0
        for entry in self._groups.get(group, {}).values():
            if entry.embedding is None:
                continue
            similarity = float(embedding @ entry.embedding)
            if similarity >= self.similarity_threshold and similarity > best_sim:
                best, best_sim = entry, similarity
        return best, best_sim

    # -- insert / invalidate ----------------------------------------------
    def insert(
        self,
        key: Hashable,
        value: Any,
        group: str = "default",
        text: Optional[str] = None,
        embedding: Optional[np.ndarray] = None,
        prompt_tokens: int = 0,
        completion_tokens: int = 0,
        nbytes: Optional[int] = None,
    ) -> bool:
        """Store one completion; returns False if it exceeds the budget.

        ``text`` (or a precomputed normalized ``embedding``) makes the
        entry reachable through the similarity tier; without either it
        is exact-match only. Re-inserting an existing key replaces the
        old entry. A value whose own footprint exceeds ``max_bytes`` is
        rejected up front (``stats.oversized``) instead of evicting the
        whole cache for nothing — the PrefixCache oversized-prompt rule.
        """
        if embedding is None and text is not None:
            embedding = self.embedder(text)
        size = nbytes if nbytes is not None else _estimate_nbytes(value)
        size += int(embedding.nbytes) if embedding is not None else 0
        size += _ENTRY_OVERHEAD
        if size > self.max_bytes:
            self.stats.oversized += 1
            return False
        old = self._entries.get(key)
        if old is not None:
            self._remove(old)
        entry = _Entry(
            key=key,
            group=group,
            value=value,
            embedding=embedding,
            nbytes=size,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
        )
        self._tick += 1
        entry.last_used = self._tick
        self._entries[key] = entry
        self._groups.setdefault(group, {})[key] = entry
        self.stats.bytes += size
        self.stats.insertions += 1
        while self.stats.bytes > self.max_bytes:
            victim = min(
                self._entries.values(), key=lambda e: e.last_used
            )
            self._remove(victim)
            self.stats.evictions += 1
        return True

    def invalidate(self, group: str) -> int:
        """Drop every entry of ``group`` (model identity changed)."""
        entries = list(self._groups.get(group, {}).values())
        for entry in entries:
            self._remove(entry)
        if entries:
            self.stats.invalidations += 1
        return len(entries)

    def clear(self) -> None:
        """Drop every entry in every group (stats are kept)."""
        self._entries.clear()
        self._groups.clear()
        self.stats.bytes = 0

    def _remove(self, entry: _Entry) -> None:
        del self._entries[entry.key]
        group = self._groups.get(entry.group)
        if group is not None:
            group.pop(entry.key, None)
            if not group:
                del self._groups[entry.group]
        self.stats.bytes -= entry.nbytes
