"""Vectorized batched decoding over the numpy Transformer.

One :class:`BatchedGenerator` turns N queued prompts into one sequence
of model forwards: a *chunked causal prefill* (one forward over each
prompt chunk with an in-chunk causal mask, instead of priming the cache
one token at a time) followed by a vectorized decode loop in which every
active sequence advances one token per forward. Ragged prompt lengths
are handled with padding-aware slotted KV caches — each row's keys
occupy columns ``0..len-1`` of a preallocated slab and a per-row mask
blocks everything beyond — so sequences of different lengths share the
same batch without influencing each other.

Requests with ``n > 1`` choices prefill the prompt **once** and fork the
cache afterwards (the choices share the prompt's K/V), which is what
makes multi-sample recipes — CodexDB's candidate programs, GPT-3-style
self-consistency — cheap. Finished sequences retire from the batch
immediately (their rows are compacted away), so one long request never
taxes the short ones that already finished.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.errors import GenerationError
from repro.generation.decoding import (
    GenerationConfig,
    TokenConstraint,
    _next_token,
    generate,
)
from repro.models.gpt import GPTModel
from repro.utils.rng import SeededRNG


@dataclass
class BatchRequest:
    """One queued generation request (``n`` choices share one prefill)."""

    prompt_ids: Sequence[int]
    config: GenerationConfig = field(default_factory=GenerationConfig)
    constraint: Optional[TokenConstraint] = None
    n: int = 1

    def __post_init__(self) -> None:
        if not self.prompt_ids:
            raise GenerationError("prompt must contain at least one token")
        if self.n <= 0:
            raise GenerationError("n must be positive")


@dataclass
class BatchResult:
    """Generated ids for one request: one sequence per choice.

    ``batched`` is False when the request did not fit the context window
    and was served by the sequential sliding-window fallback instead.
    """

    sequences: List[List[int]]
    batched: bool = True


@dataclass
class GeneratorStats:
    """Forward-pass accounting for one :class:`BatchedGenerator`."""

    prefill_chunks: int = 0
    prefill_tokens: int = 0
    decode_steps: int = 0
    generated_tokens: int = 0
    retired_sequences: int = 0
    sequential_fallbacks: int = 0


@dataclass
class _ChoiceState:
    """Decode-time state of one active sequence (request choice)."""

    request_index: int
    choice_index: int
    config: GenerationConfig
    constraint: Optional[TokenConstraint]
    rng: SeededRNG
    generated: List[int] = field(default_factory=list)


class BatchedGenerator:
    """Decode many sequences per model forward (inference only).

    ``prefill_chunk`` bounds the width of each prefill forward; ``None``
    primes every prompt in a single chunk. Greedy decoding produces the
    same token sequences as per-prompt :func:`repro.generation.generate`,
    and sampling draws from per-sequence seeded RNGs exactly as the
    sequential path does (choice ``j`` of a request samples with
    ``config.seed + j``).
    """

    def __init__(self, model: GPTModel, prefill_chunk: Optional[int] = None) -> None:
        if prefill_chunk is not None and prefill_chunk <= 0:
            raise GenerationError("prefill_chunk must be positive")
        self.model = model
        self.prefill_chunk = prefill_chunk
        self.stats = GeneratorStats()

    def generate(self, requests: Sequence[BatchRequest]) -> List[BatchResult]:
        """Serve ``requests`` in one batch; order follows the input."""
        results: List[Optional[BatchResult]] = [None] * len(requests)
        max_len = self.model.config.max_seq_len
        batched: List[int] = []
        for i, request in enumerate(requests):
            if len(request.prompt_ids) + request.config.max_new_tokens <= max_len:
                batched.append(i)
            else:
                results[i] = self._sequential_fallback(request)
        if batched:
            self.model.eval()
            with no_grad():
                for i, result in zip(batched, self._run([requests[i] for i in batched])):
                    results[i] = result
        return [r for r in results if r is not None]

    def _sequential_fallback(self, request: BatchRequest) -> BatchResult:
        """Serve one non-fitting request with sliding-window decoding."""
        self.stats.sequential_fallbacks += 1
        sequences = [
            generate(
                self.model,
                request.prompt_ids,
                _choice_config(request.config, choice),
                request.constraint,
            )
            for choice in range(request.n)
        ]
        return BatchResult(sequences=sequences, batched=False)

    # -- the batched path --------------------------------------------------
    def _run(self, requests: Sequence[BatchRequest]) -> List[BatchResult]:
        prompt_lengths = np.array([len(r.prompt_ids) for r in requests])
        capacity = int(
            max(
                len(r.prompt_ids) + r.config.max_new_tokens for r in requests
            )
        )
        caches = self.model.init_cache(batch_size=len(requests), capacity=capacity)
        next_logits = self._prefill(requests, prompt_lengths, caches)

        # Fork each request's prefilled cache across its n choices.
        repeats = np.array([r.n for r in requests])
        for cache in caches:
            cache["k"] = np.repeat(cache["k"], repeats, axis=0)
            cache["v"] = np.repeat(cache["v"], repeats, axis=0)
        lengths = np.repeat(prompt_lengths, repeats)
        next_logits = np.repeat(next_logits, repeats, axis=0)
        states = [
            _ChoiceState(
                request_index=i,
                choice_index=j,
                config=_choice_config(request.config, j),
                constraint=request.constraint,
                rng=SeededRNG(request.config.seed + j),
            )
            for i, request in enumerate(requests)
            for j in range(request.n)
        ]

        results = [BatchResult(sequences=[]) for _ in requests]
        while states:
            keep = self._advance(states, next_logits, results)
            if not keep.all():
                states = [s for s, k in zip(states, keep) if k]
                lengths = lengths[keep]
                next_logits = next_logits[keep]
                for cache in caches:
                    cache["k"] = cache["k"][keep]
                    cache["v"] = cache["v"][keep]
            if not states:
                break
            next_logits = self._decode_step(states, lengths, caches)
            lengths += 1
        for result in results:
            result.sequences.sort(key=lambda pair: pair[0])
            result.sequences[:] = [seq for _, seq in result.sequences]
        return results

    def _prefill(
        self,
        requests: Sequence[BatchRequest],
        prompt_lengths: np.ndarray,
        caches: list,
    ) -> np.ndarray:
        """Chunked causal prefill; returns each row's next-token logits."""
        rows = len(requests)
        longest = int(prompt_lengths.max())
        prompts = np.zeros((rows, longest), dtype=np.int64)
        for i, request in enumerate(requests):
            prompts[i, : prompt_lengths[i]] = request.prompt_ids
        next_logits = np.zeros((rows, self.model.config.vocab_size))
        chunk = self.prefill_chunk or longest
        for start in range(0, longest, chunk):
            stop = min(start + chunk, longest)
            # In-chunk causal mask over absolute columns: query at column
            # start+t may see keys 0..start+t. Rows already past their
            # prompt produce padding garbage that is never read.
            blocked = (
                np.arange(stop)[None, :] > (start + np.arange(stop - start))[:, None]
            )
            hidden = self.model.encode_chunk(
                prompts[:, start:stop],
                np.arange(start, stop)[None, :],
                caches,
                blocked=blocked[None, None],
                write_cols=slice(start, stop),
                kv_len=stop,
            )
            self.stats.prefill_chunks += 1
            # Harvest logits for rows whose last prompt token is here.
            last = prompt_lengths - 1
            sel = (last >= start) & (last < stop)
            if sel.any():
                picked = hidden.data[np.where(sel)[0], last[sel] - start]
                logits = self.model.logits_from_hidden(Tensor(picked))
                next_logits[sel] = logits.data
        self.stats.prefill_tokens += int(prompt_lengths.sum())
        return next_logits

    def _advance(
        self,
        states: List[_ChoiceState],
        next_logits: np.ndarray,
        results: List[BatchResult],
    ) -> np.ndarray:
        """Pick one token per active sequence; retire finished rows."""
        keep = np.ones(len(states), dtype=bool)
        plain_greedy = all(
            s.config.strategy == "greedy" and s.constraint is None for s in states
        )
        greedy_ids = np.argmax(next_logits, axis=-1) if plain_greedy else None
        for i, state in enumerate(states):
            if greedy_ids is not None:
                token: Optional[int] = int(greedy_ids[i])
            else:
                token = _next_token(
                    next_logits[i], state.generated, state.config,
                    state.constraint, state.rng,
                )
            if token is None or token in state.config.stop_ids:
                keep[i] = False
            else:
                state.generated.append(token)
                self.stats.generated_tokens += 1
                if len(state.generated) >= state.config.max_new_tokens:
                    keep[i] = False
            if not keep[i]:
                self.stats.retired_sequences += 1
                results[state.request_index].sequences.append(
                    (state.choice_index, state.generated)
                )
        return keep

    def _decode_step(
        self, states: List[_ChoiceState], lengths: np.ndarray, caches: list
    ) -> np.ndarray:
        """One vectorized forward advancing every active sequence."""
        step_ids = np.array([[s.generated[-1]] for s in states], dtype=np.int64)
        kv_len = int(lengths.max()) + 1
        blocked = (np.arange(kv_len)[None, :] > lengths[:, None])[:, None, None, :]
        hidden = self.model.encode_chunk(
            step_ids,
            lengths[:, None],
            caches,
            blocked=blocked,
            write_cols=lengths,
            kv_len=kv_len,
        )
        logits = self.model.logits_from_hidden(Tensor(hidden.data[:, 0]))
        self.stats.decode_steps += 1
        return logits.data


def _choice_config(config: GenerationConfig, choice: int) -> GenerationConfig:
    """Choice ``j`` of an n-way request decodes with ``seed + j``."""
    if choice == 0:
        return config
    return dataclasses.replace(config, seed=config.seed + choice)
