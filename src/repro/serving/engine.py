"""Vectorized batched decoding over the numpy Transformer.

One :class:`BatchedGenerator` turns N queued prompts into one sequence
of model forwards: a *chunked causal prefill* (one forward over each
prompt chunk with an in-chunk causal mask, instead of priming the cache
one token at a time) followed by a vectorized decode loop in which every
active sequence advances one token per forward. Ragged prompt lengths
are handled with padding-aware slotted KV caches — each row's keys
occupy columns ``0..len-1`` of a preallocated slab and a per-row mask
blocks everything beyond — so sequences of different lengths share the
same batch without influencing each other.

Requests with ``n > 1`` choices prefill the prompt **once** and fork the
cache afterwards (the choices share the prompt's K/V), which is what
makes multi-sample recipes — CodexDB's candidate programs, GPT-3-style
self-consistency — cheap. Finished sequences retire from the batch
immediately (their rows are compacted away), so one long request never
taxes the short ones that already finished.

Two reuse layers ride on top:

* a :class:`~repro.serving.prefix.PrefixCache` lets prompts that share
  a prefix (the few-shot header of a text2sql sweep, an imputation
  shot block) skip re-prefilling it — the engine preloads the cached
  K/V columns, prefills only the suffix, and stores each new prompt's
  states back for later requests. When several queued prompts share a
  prefix that is not cached yet, the engine prefills that header
  *once* (one single-row forward) before the batch so every row reuses
  it.
* :meth:`BatchedGenerator.generate_continuous` replaces the microbatch
  barrier with retire-and-admit **continuous batching**: when a
  sequence finishes mid-decode its slot is refilled from the queue
  immediately, so the batch stays full instead of draining to the
  slowest request.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.errors import GenerationError
from repro.generation.decoding import (
    GenerationConfig,
    TokenConstraint,
    _next_token,
    generate,
)
from repro.models.gpt import GPTModel
from repro.nn.attention import chunk_causal_mask
from repro.serving.prefix import PrefixCache, common_prefix_length
from repro.utils.rng import SeededRNG

#: per-decode-iteration hook: ``on_step(active, queued)`` receives the
#: request indexes currently decoding and those still queued; returning
#: indexes cancels them mid-stream, raising aborts the whole run.
StepHook = Callable[[List[int], List[int]], Optional[Iterable[int]]]


@dataclass
class BatchRequest:
    """One queued generation request (``n`` choices share one prefill)."""

    prompt_ids: Sequence[int]
    config: GenerationConfig = field(default_factory=GenerationConfig)
    constraint: Optional[TokenConstraint] = None
    n: int = 1

    def __post_init__(self) -> None:
        if not self.prompt_ids:
            raise GenerationError("prompt must contain at least one token")
        if self.n <= 0:
            raise GenerationError("n must be positive")


@dataclass
class BatchResult:
    """Generated ids for one request: one sequence per choice.

    ``batched`` is False when the request did not fit the context window
    and was served by the sequential sliding-window fallback instead.
    ``cancelled`` is True when the request was retired mid-stream by an
    ``on_step`` hook (client disconnect, deadline expiry); its partial
    tokens are discarded and ``sequences`` is empty.
    """

    sequences: List[List[int]]
    batched: bool = True
    cancelled: bool = False


@dataclass
class GeneratorStats:
    """Forward-pass accounting for one :class:`BatchedGenerator`.

    ``prefill_tokens`` counts prompt tokens actually pushed through the
    model; tokens served from the prefix cache instead are counted in
    ``prefix_reused_tokens``. ``refills`` counts requests admitted into
    freed slots mid-decode (continuous batching); ``peak_active`` is
    the widest decode batch observed.

    The speculative counters are zero on a plain generator:
    ``draft_tokens`` counts tokens proposed by the draft model,
    ``draft_accepted_tokens`` the subset the target model verified, and
    ``verify_forwards`` the batched target forwards that did the
    verification (one per speculative round).
    """

    prefill_chunks: int = 0
    prefill_tokens: int = 0
    decode_steps: int = 0
    generated_tokens: int = 0
    retired_sequences: int = 0
    sequential_fallbacks: int = 0
    prefix_hits: int = 0
    prefix_misses: int = 0
    prefix_reused_tokens: int = 0
    refills: int = 0
    peak_active: int = 0
    cancelled_sequences: int = 0
    cancelled_tokens: int = 0
    draft_tokens: int = 0
    draft_accepted_tokens: int = 0
    verify_forwards: int = 0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of draft-proposed tokens the target model accepted."""
        if self.draft_tokens == 0:
            return 0.0
        return self.draft_accepted_tokens / self.draft_tokens


@dataclass
class _ChoiceState:
    """Decode-time state of one active sequence (request choice)."""

    request_index: int
    choice_index: int
    config: GenerationConfig
    constraint: Optional[TokenConstraint]
    rng: SeededRNG
    generated: List[int] = field(default_factory=list)


class BatchedGenerator:
    """Decode many sequences per model forward (inference only).

    ``prefill_chunk`` bounds the width of each prefill forward; ``None``
    primes every prompt in a single chunk. With a ``prefix_cache``,
    prompt prefixes already seen by the cache are loaded instead of
    recomputed and every prefilled prompt is stored back. Greedy
    decoding produces the same token sequences as per-prompt
    :func:`repro.generation.generate` — with or without the prefix
    cache — and sampling draws from per-sequence seeded RNGs exactly as
    the sequential path does (choice ``j`` of a request samples with
    ``config.seed + j``).

    Shared state: ``stats`` (and the prefix cache, when attached) are
    plain mutable attributes updated on every generate call with no
    synchronization — safe only while one caller drives the generator
    at a time. ``python -m repro.analysis.lint --shared-state
    src/repro/serving`` inventories these sites; the
    ``shared-state-mutation`` lint rule gates any future ``async``
    request path over this class.
    """

    def __init__(
        self,
        model: GPTModel,
        prefill_chunk: Optional[int] = None,
        prefix_cache: Optional[PrefixCache] = None,
    ) -> None:
        if prefill_chunk is not None and prefill_chunk <= 0:
            raise GenerationError("prefill_chunk must be positive")
        self.model = model
        self.prefill_chunk = prefill_chunk
        self.prefix_cache = prefix_cache
        self.stats = GeneratorStats()

    def generate(self, requests: Sequence[BatchRequest]) -> List[BatchResult]:
        """Serve ``requests`` in one batch; order follows the input."""
        results: List[Optional[BatchResult]] = [None] * len(requests)
        batched: List[int] = []
        for i, request in enumerate(requests):
            if self._fits(request):
                batched.append(i)
            else:
                results[i] = self._sequential_fallback(request)
        if batched:
            self.model.eval()
            with no_grad():
                for i, result in zip(batched, self._run([requests[i] for i in batched])):
                    results[i] = result
        return [r for r in results if r is not None]

    def generate_continuous(
        self,
        requests: Sequence[BatchRequest],
        max_active: int = 8,
        on_step: Optional[StepHook] = None,
        on_admit: Optional[Callable[[int], None]] = None,
    ) -> List[BatchResult]:
        """Serve ``requests`` with retire-and-admit continuous batching.

        At most ``max_active`` sequences decode together; whenever one
        finishes, its slot is refilled from the queue *immediately*
        (prefilling the newcomer mid-decode) instead of waiting for the
        whole microbatch to drain. Output order follows the input and
        every sequence is token-identical to :meth:`generate`.

        ``on_step(active, queued)`` — if given — is called once per
        decode-loop iteration with the request indexes currently
        decoding and those still queued; any index it returns is
        *cancelled mid-stream*: its partial tokens are discarded, its
        result comes back ``cancelled=True``, and its slots are freed
        for queued work without disturbing the other rows (their KV
        columns, lengths, and logits are pruned with the same keep-mask
        path that retires finished sequences). Exceptions raised by the
        hook abort the whole run — that is how a replica "dies"
        mid-decode under fault injection. ``on_admit(index)`` fires when
        a request leaves the queue and enters the active batch, so
        schedulers can record queue-wait time per request.
        """
        if max_active <= 0:
            raise GenerationError("max_active must be positive")
        results: List[Optional[BatchResult]] = [None] * len(requests)
        pending: List[Tuple[int, BatchRequest]] = []
        for i, request in enumerate(requests):
            if self._fits(request):
                pending.append((i, request))
            else:
                results[i] = self._sequential_fallback(request)
        if pending:
            capacity = int(
                max(
                    len(r.prompt_ids) + r.config.max_new_tokens
                    for _, r in pending
                )
            )
            self.model.eval()
            with no_grad():
                self._run_continuous(
                    pending, capacity, max_active, results, on_step, on_admit
                )
        return [r for r in results if r is not None]

    def _fits(self, request: BatchRequest) -> bool:
        max_len = self.model.config.max_seq_len
        return len(request.prompt_ids) + request.config.max_new_tokens <= max_len

    def _sequential_fallback(self, request: BatchRequest) -> BatchResult:
        """Serve one non-fitting request with sliding-window decoding."""
        self.stats.sequential_fallbacks += 1
        sequences = [
            generate(
                self.model,
                request.prompt_ids,
                _choice_config(request.config, choice),
                request.constraint,
            )
            for choice in range(request.n)
        ]
        return BatchResult(sequences=sequences, batched=False)

    # -- the batched path --------------------------------------------------
    def _run(self, requests: Sequence[BatchRequest]) -> List[BatchResult]:
        prompt_lengths = np.array([len(r.prompt_ids) for r in requests])
        capacity = int(
            max(
                len(r.prompt_ids) + r.config.max_new_tokens for r in requests
            )
        )
        caches = self.model.init_cache(batch_size=len(requests), capacity=capacity)
        self._seed_shared_prefix(requests)
        next_logits = self._prefill(requests, prompt_lengths, caches)

        # Fork each request's prefilled cache across its n choices.
        repeats = np.array([r.n for r in requests])
        for cache in caches:
            cache["k"] = np.repeat(cache["k"], repeats, axis=0)
            cache["v"] = np.repeat(cache["v"], repeats, axis=0)
        lengths = np.repeat(prompt_lengths, repeats)
        next_logits = np.repeat(next_logits, repeats, axis=0)
        states = [
            _ChoiceState(
                request_index=i,
                choice_index=j,
                config=_choice_config(request.config, j),
                constraint=request.constraint,
                rng=SeededRNG(request.config.seed + j),
            )
            for i, request in enumerate(requests)
            for j in range(request.n)
        ]

        results = [BatchResult(sequences=[]) for _ in requests]
        while states:
            self.stats.peak_active = max(self.stats.peak_active, len(states))
            keep = self._advance(states, next_logits, results)
            if not keep.all():
                states = [s for s, k in zip(states, keep) if k]
                lengths = lengths[keep]
                next_logits = next_logits[keep]
                for cache in caches:
                    cache["k"] = cache["k"][keep]
                    cache["v"] = cache["v"][keep]
            if not states:
                break
            next_logits = self._decode_step(states, lengths, caches)
            lengths += 1
        for result in results:
            result.sequences.sort(key=lambda pair: pair[0])
            result.sequences[:] = [seq for _, seq in result.sequences]
        return results

    # -- continuous batching ----------------------------------------------
    def _run_continuous(
        self,
        pending: List[Tuple[int, BatchRequest]],
        capacity: int,
        max_active: int,
        results: List[Optional[BatchResult]],
        on_step: Optional[StepHook] = None,
        on_admit: Optional[Callable[[int], None]] = None,
    ) -> None:
        queue = list(pending)
        caches: Optional[list] = None
        states: List[_ChoiceState] = []
        lengths = np.zeros(0, dtype=np.int64)
        next_logits = np.zeros((0, self.model.config.vocab_size))
        admitted_any = False

        while queue or states:
            if on_step is not None:
                cancelled = self._apply_cancellations(
                    on_step, queue, states, results
                )
                if cancelled and states:
                    keep = np.array(
                        [s.request_index not in cancelled for s in states],
                        dtype=bool,
                    )
                    if not keep.all():
                        states = [s for s, k in zip(states, keep) if k]
                        lengths = lengths[keep]
                        next_logits = next_logits[keep]
                        for cache in caches:
                            cache["k"] = cache["k"][keep]
                            cache["v"] = cache["v"][keep]
                if not (queue or states):
                    break
            batch = self._take_admissions(queue, states, max_active)
            if batch:
                if admitted_any:
                    self.stats.refills += len(batch)
                admitted_any = True
                if on_admit is not None:
                    for index, _ in batch:
                        on_admit(index)
                caches, states, lengths, next_logits = self._admit(
                    batch, capacity, caches, states, lengths, next_logits, results
                )
            if not states:
                continue
            self.stats.peak_active = max(self.stats.peak_active, len(states))
            keep = self._advance(states, next_logits, results)
            if not keep.all():
                states = [s for s, k in zip(states, keep) if k]
                lengths = lengths[keep]
                next_logits = next_logits[keep]
                for cache in caches:
                    cache["k"] = cache["k"][keep]
                    cache["v"] = cache["v"][keep]
            if not states:
                continue  # freed slots may admit queued work next turn
            next_logits = self._decode_step(states, lengths, caches)
            lengths += 1

        for result in results:
            if result is not None and result.batched:
                result.sequences.sort(key=lambda pair: pair[0])
                result.sequences[:] = [seq for _, seq in result.sequences]

    def _apply_cancellations(
        self,
        on_step: StepHook,
        queue: List[Tuple[int, BatchRequest]],
        states: List[_ChoiceState],
        results: List[Optional[BatchResult]],
    ) -> set:
        """Ask the hook who to cancel; retire them from queue and batch.

        Returns the cancelled request indexes (already restricted to
        live requests — cancelling a finished or unknown index is a
        no-op, so a racing gateway can never clobber a delivered
        result). The caller prunes the KV rows of cancelled *active*
        states with the ordinary keep-mask path.
        """
        active = sorted({s.request_index for s in states})
        queued = [index for index, _ in queue]
        requested = on_step(active, queued)
        cancel = set(requested) if requested else set()
        cancel &= set(active) | set(queued)
        if not cancel:
            return set()
        kept: List[Tuple[int, BatchRequest]] = []
        for index, request in queue:
            if index in cancel:
                self.stats.cancelled_sequences += request.n
                results[index] = BatchResult(sequences=[], cancelled=True)
            else:
                kept.append((index, request))
        queue[:] = kept
        for state in states:
            if state.request_index in cancel:
                self.stats.cancelled_sequences += 1
                self.stats.cancelled_tokens += len(state.generated)
                results[state.request_index] = BatchResult(
                    sequences=[], cancelled=True
                )
        return cancel

    @staticmethod
    def _take_admissions(
        queue: List[Tuple[int, BatchRequest]],
        states: List[_ChoiceState],
        max_active: int,
    ) -> List[Tuple[int, BatchRequest]]:
        """Pop the FIFO prefix of the queue that fits the free slots.

        A request wider than ``max_active`` still runs — alone, when the
        batch is empty — so oversized requests degrade throughput
        rather than deadlock the queue.
        """
        batch: List[Tuple[int, BatchRequest]] = []
        occupancy = len(states)
        while queue:
            _, request = queue[0]
            if (batch or states) and occupancy + request.n > max_active:
                break
            batch.append(queue.pop(0))
            occupancy += request.n
        return batch

    def _admit(
        self,
        batch: List[Tuple[int, BatchRequest]],
        capacity: int,
        caches: Optional[list],
        states: List[_ChoiceState],
        lengths: np.ndarray,
        next_logits: np.ndarray,
        results: List[Optional[BatchResult]],
    ) -> Tuple[list, List[_ChoiceState], np.ndarray, np.ndarray]:
        """Prefill newly admitted requests and splice them into the batch."""
        requests = [request for _, request in batch]
        prompt_lengths = np.array([len(r.prompt_ids) for r in requests])
        fresh = self.model.init_cache(batch_size=len(requests), capacity=capacity)
        self._seed_shared_prefix(requests)
        logits = self._prefill(requests, prompt_lengths, fresh)

        repeats = np.array([r.n for r in requests])
        for cache in fresh:
            cache["k"] = np.repeat(cache["k"], repeats, axis=0)
            cache["v"] = np.repeat(cache["v"], repeats, axis=0)
        new_lengths = np.repeat(prompt_lengths, repeats)
        new_logits = np.repeat(logits, repeats, axis=0)
        for (index, request) in batch:
            results[index] = BatchResult(sequences=[])
        new_states = [
            _ChoiceState(
                request_index=index,
                choice_index=j,
                config=_choice_config(request.config, j),
                constraint=request.constraint,
                rng=SeededRNG(request.config.seed + j),
            )
            for index, request in batch
            for j in range(request.n)
        ]

        if caches is None:
            return fresh, new_states, new_lengths, new_logits
        for cache, addition in zip(caches, fresh):
            # Row-axis splice, once per admission wave (amortized over
            # the wave's whole decode, not per token).
            cache["k"] = np.concatenate(  # repro: noqa[concat-in-loop]
                [cache["k"], addition["k"]], axis=0
            )
            cache["v"] = np.concatenate(  # repro: noqa[concat-in-loop]
                [cache["v"], addition["v"]], axis=0
            )
        return (
            caches,
            states + new_states,
            np.concatenate([lengths, new_lengths]),
            np.concatenate([next_logits, new_logits]),
        )

    # -- prefill with prefix reuse -----------------------------------------
    def _seed_shared_prefix(self, requests: Sequence[BatchRequest]) -> None:
        """Prefill a shared, uncached prompt header once for the batch.

        When every queued prompt starts with the same token prefix (a
        few-shot header) and the prefix cache does not cover it yet,
        one single-row prefill of the header populates the cache so
        each row's own prefill only touches its suffix.
        """
        if self.prefix_cache is None or len(requests) < 2:
            return
        prompts = [list(r.prompt_ids) for r in requests]
        shared = common_prefix_length(prompts)
        # Leave at least the final prompt token for every row to
        # prefill — that forward produces the row's next-token logits.
        shared = min(shared, min(len(p) for p in prompts) - 1)
        if shared < 2 or self.prefix_cache.peek_length(prompts[0]) >= shared:
            return
        header = BatchRequest(prompts[0][:shared])
        caches = self.model.init_cache(batch_size=1, capacity=shared)
        self._prefill([header], np.array([shared]), caches)

    def _load_prefixes(
        self,
        requests: Sequence[BatchRequest],
        prompt_lengths: np.ndarray,
        caches: list,
    ) -> np.ndarray:
        """Preload cached prompt-prefix K/V; returns per-row reuse lengths."""
        reused = np.zeros(len(requests), dtype=np.int64)
        if self.prefix_cache is None:
            return reused
        for i, request in enumerate(requests):
            match, layers = self.prefix_cache.lookup(
                request.prompt_ids, max_len=int(prompt_lengths[i]) - 1
            )
            if not match:
                self.stats.prefix_misses += 1
                continue
            self.stats.prefix_hits += 1
            self.stats.prefix_reused_tokens += match
            reused[i] = match
            for cache, (keys, values) in zip(caches, layers):
                cache["k"][i, :, :match] = keys
                cache["v"][i, :, :match] = values
        return reused

    def _store_prefixes(
        self,
        requests: Sequence[BatchRequest],
        prompt_lengths: np.ndarray,
        caches: list,
    ) -> None:
        """Insert each prompt's prefilled K/V into the prefix cache."""
        if self.prefix_cache is None:
            return
        for i, request in enumerate(requests):
            length = int(prompt_lengths[i])
            layers = [
                (cache["k"][i, :, :length], cache["v"][i, :, :length])
                for cache in caches
            ]
            self.prefix_cache.insert(list(request.prompt_ids), layers)

    def _prefill(
        self,
        requests: Sequence[BatchRequest],
        prompt_lengths: np.ndarray,
        caches: list,
    ) -> np.ndarray:
        """Chunked causal prefill; returns each row's next-token logits.

        Rows whose prompt prefix is cached start from the shortest
        uncached column instead of zero: the cached K/V columns are
        preloaded into the slab and attention sees them through the
        chunk mask exactly as if they had been computed this call.
        """
        rows = len(requests)
        longest = int(prompt_lengths.max())
        prompts = np.zeros((rows, longest), dtype=np.int64)
        for i, request in enumerate(requests):
            prompts[i, : prompt_lengths[i]] = request.prompt_ids
        reused = self._load_prefixes(requests, prompt_lengths, caches)
        first = int(reused.min())
        next_logits = np.zeros((rows, self.model.config.vocab_size))
        chunk = self.prefill_chunk or (longest - first)
        for start in range(first, longest, chunk):
            stop = min(start + chunk, longest)
            # In-chunk causal mask over absolute columns: query at column
            # start+t may see keys 0..start+t (preloaded prefix columns
            # included). Rows already past their prompt produce padding
            # garbage that is never read.
            blocked = chunk_causal_mask(start, stop)
            hidden = self.model.encode_chunk(
                prompts[:, start:stop],
                np.arange(start, stop)[None, :],
                caches,
                blocked=blocked[None, None],
                write_cols=slice(start, stop),
                kv_len=stop,
            )
            self.stats.prefill_chunks += 1
            # Harvest logits for rows whose last prompt token is here.
            last = prompt_lengths - 1
            sel = (last >= start) & (last < stop)
            if sel.any():
                picked = hidden.data[np.where(sel)[0], last[sel] - start]
                logits = self.model.logits_from_hidden(Tensor(picked))
                next_logits[sel] = logits.data
        self.stats.prefill_tokens += int((prompt_lengths - reused).sum())
        self._store_prefixes(requests, prompt_lengths, caches)
        return next_logits

    def _advance(
        self,
        states: List[_ChoiceState],
        next_logits: np.ndarray,
        results: List[BatchResult],
    ) -> np.ndarray:
        """Pick one token per active sequence; retire finished rows."""
        keep = np.ones(len(states), dtype=bool)
        plain_greedy = all(
            s.config.strategy == "greedy" and s.constraint is None for s in states
        )
        greedy_ids = np.argmax(next_logits, axis=-1) if plain_greedy else None
        for i, state in enumerate(states):
            if greedy_ids is not None:
                token: Optional[int] = int(greedy_ids[i])
            else:
                token = _next_token(
                    next_logits[i], state.generated, state.config,
                    state.constraint, state.rng,
                )
            if token is None or token in state.config.stop_ids:
                keep[i] = False
            else:
                state.generated.append(token)
                self.stats.generated_tokens += 1
                if len(state.generated) >= state.config.max_new_tokens:
                    keep[i] = False
            if not keep[i]:
                self.stats.retired_sequences += 1
                results[state.request_index].sequences.append(
                    (state.choice_index, state.generated)
                )
        return keep

    def _decode_step(
        self, states: List[_ChoiceState], lengths: np.ndarray, caches: list
    ) -> np.ndarray:
        """One vectorized forward advancing every active sequence."""
        step_ids = np.array([[s.generated[-1]] for s in states], dtype=np.int64)
        kv_len = int(lengths.max()) + 1
        blocked = (np.arange(kv_len)[None, :] > lengths[:, None])[:, None, None, :]
        hidden = self.model.encode_chunk(
            step_ids,
            lengths[:, None],
            caches,
            blocked=blocked,
            write_cols=lengths,
            kv_len=kv_len,
        )
        logits = self.model.logits_from_hidden(Tensor(hidden.data[:, 0]))
        self.stats.decode_steps += 1
        return logits.data


def _choice_config(config: GenerationConfig, choice: int) -> GenerationConfig:
    """Choice ``j`` of an n-way request decodes with ``seed + j``."""
    if choice == 0:
        return config
    return dataclasses.replace(config, seed=config.seed + choice)
