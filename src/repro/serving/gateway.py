"""Multi-tenant async serving gateway: the front door to the engines.

The paper's workloads all flow through hosted APIs that multiplex many
callers onto shared model replicas. :class:`Gateway` is that front door
made mechanical: an ``asyncio`` service that fronts one or more
:class:`Replica`\\ s (each a continuous-batching
:class:`~repro.serving.scheduler.BatchScheduler` over a
:class:`~repro.serving.engine.BatchedGenerator`, decoded in a worker
thread so the event loop never blocks on a forward pass) and survives
the two things front doors die of — overload and replica failure:

* **Admission control.** A bounded priority queue plus per-tenant
  :class:`~repro.reliability.ratelimit.TokenBucket` quotas. Excess work
  is *shed at the door* with a 429-style
  :class:`~repro.errors.GatewayOverloadError` instead of queued to
  death, which is what keeps accepted-request p99 latency bounded at
  2x-saturation offered load. An optional
  :class:`~repro.serving.semcache.SemanticCache` sits *in front of*
  admission: an exact repeat of a completed request is answered from
  the cache before the tenant's quota bucket is even consulted — a
  cache hit costs the tenant nothing and no replica any work.
* **SLO-aware dispatch.** The queue drains in ``(priority, arrival)``
  order; a request carries a deadline *budget* and — following the
  :class:`~repro.reliability.retry.Retrier` deadline-accounting rule of
  never starting work the budget cannot pay for — is rejected with
  :class:`~repro.errors.DeadlineExceededError` at dispatch if it is
  already overdue, and cancelled mid-decode (freeing its batch slot)
  the moment its projected completion overshoots.
* **Load shedding + failover.** Every replica sits behind a
  :class:`~repro.reliability.breaker.CircuitBreaker`. A replica killed
  mid-decode by a :class:`~repro.reliability.faults.FaultInjector`
  trips its breaker; the in-flight requests are re-admitted (original
  arrival order and deadlines preserved) and decoded from scratch on a
  healthy replica — greedy outputs stay token-identical to the direct
  scheduler path and every admitted request completes **exactly once**.
  The breaker's half-open probe doubles as the health check: an open
  replica is retried with real traffic after its reset timeout.

Shared state & lock discipline
------------------------------
The gateway runs on one event loop. Every mutable attribute — the
admission heap, ticket futures, ``stats``, the work event — is mutated
**only from synchronous methods** called by tasks on that loop, so each
mutation is atomic with respect to task interleaving; ``async def``
bodies never write ``self.*`` between awaits (the
``shared-state-mutation`` lint rule enforces exactly this discipline).
The single exception is the client-cancellation set, which decode
worker threads read mid-stream: it is guarded by a ``threading.Lock``
and accessed only through :meth:`Gateway.cancel` /
:meth:`Gateway._snapshot_cancelled`. Worker threads otherwise touch
nothing of the gateway's: each owns its replica's scheduler for the
duration of one decode call and communicates by return value.
"""

from __future__ import annotations

import asyncio
import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    GatewayOverloadError,
    GenerationError,
    ReproError,
    RequestCancelledError,
)
from repro.models.gpt import GPTModel
from repro.reliability.aclock import AsyncClock, AsyncSystemClock
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.clock import Clock
from repro.reliability.faults import FaultInjector
from repro.reliability.ratelimit import TokenBucket
from repro.serving.engine import BatchRequest, BatchResult
from repro.serving.prefix import PrefixCache
from repro.serving.scheduler import BatchScheduler
from repro.serving.semcache import SemanticCache, completion_request_key


@dataclass(frozen=True)
class ServiceModel:
    """Virtual service time charged per decode batch.

    Under an :class:`~repro.reliability.aclock.AsyncVirtualClock` the
    forward passes themselves are instantaneous events, so the cost of
    decoding is modelled explicitly: a batch that ran ``decode_steps``
    vectorized decode forwards and ``prefill_chunks`` prefill forwards
    charges ``overhead + steps * seconds_per_decode_step + chunks *
    seconds_per_prefill_chunk`` seconds of virtual time. All zeros (the
    default) charges nothing — appropriate on a real clock, where the
    decode thread already spent the wall time.
    """

    seconds_per_decode_step: float = 0.0
    seconds_per_prefill_chunk: float = 0.0
    overhead: float = 0.0

    def batch_seconds(self, decode_steps: int, prefill_chunks: int) -> float:
        charged = (
            self.overhead
            + decode_steps * self.seconds_per_decode_step
            + prefill_chunks * self.seconds_per_prefill_chunk
        )
        return charged if charged > 0 else 0.0


class Replica:
    """One engine replica: a continuous scheduler plus its guard rails.

    ``injector`` (optional) fires once per decode *step* — that is how
    a test kills a replica mid-decode. ``breaker`` defaults to a
    trip-on-first-failure circuit with a 5-second reset; its half-open
    probe is the replica's health check. Construct the injector without
    a clock: replica latency is modelled by ``service`` on the event
    loop, never charged from the decode thread.

    Shared state: the scheduler (and these counters) are driven by
    exactly one gateway dispatch task, which hands the scheduler to a
    worker thread for the duration of one decode call at a time; there
    is never concurrent access, so no lock is held.
    """

    def __init__(
        self,
        name: str,
        model: GPTModel,
        max_batch: int = 8,
        prefill_chunk: Optional[int] = None,
        prefix_cache: Optional[PrefixCache] = None,
        breaker: Optional[CircuitBreaker] = None,
        injector: Optional[FaultInjector] = None,
        clock: Optional[Clock] = None,
        service: Optional[ServiceModel] = None,
    ) -> None:
        self.name = name
        self.max_batch = max_batch
        self.scheduler = BatchScheduler(
            model,
            max_batch_size=max_batch,
            prefill_chunk=prefill_chunk,
            prefix_cache=prefix_cache,
            continuous=True,
            clock=clock,
        )
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        )
        self.injector = injector
        self.service = service if service is not None else ServiceModel()
        #: successful decode batches / decode batches that died
        self.decodes = 0
        self.failures = 0

    def decode(self, requests: Sequence[BatchRequest], on_step) -> Tuple[List[BatchResult], float]:
        """Run one batch to completion (called from a worker thread).

        Returns the per-request results in submission order plus the
        virtual service seconds the batch should charge. Exceptions
        from the fault injector or the hook propagate — the gateway
        treats them as this replica dying with the batch in flight.
        """
        stats = self.scheduler.generator.stats
        steps_before = stats.decode_steps
        chunks_before = stats.prefill_chunks
        tickets = [self.scheduler.submit(request) for request in requests]
        results = self.scheduler.run(on_step=on_step)
        service = self.service.batch_seconds(
            stats.decode_steps - steps_before,
            stats.prefill_chunks - chunks_before,
        )
        return [results[ticket] for ticket in tickets], service


@dataclass
class GatewayRequest:
    """One tenant request: a :class:`BatchRequest` plus serving policy.

    ``priority`` dispatches lower values first (0 = most urgent);
    ``deadline`` is a budget in clock seconds from admission — overdue
    work is rejected at dispatch and cancelled mid-decode, never
    silently served late.
    """

    request: BatchRequest
    tenant: str = "default"
    priority: int = 1
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise GenerationError("deadline must be positive when set")


@dataclass
class GatewayResult:
    """What an admitted, completed request gets back."""

    sequences: List[List[int]]
    replica: str
    attempts: int
    queue_wait: float
    latency: float


@dataclass
class GatewayStats:
    """Counters for one gateway's lifetime of traffic.

    ``queue_wait_total``/``queue_wait_max`` cover admission→dispatch,
    so ``p99 latency = queue wait + decode (service) time`` decomposes
    overload (wait grows) from slow decoding (service grows).
    """

    submitted: int = 0
    admitted: int = 0
    #: answered from the semantic cache before admission — these never
    #: count as ``admitted`` (no queue slot, no quota token, no decode),
    #: so the settlement identity over admitted requests is unaffected.
    cache_hits: int = 0
    completed: int = 0
    cancelled: int = 0
    failed: int = 0
    shed_quota: int = 0
    shed_queue_full: int = 0
    shed_unavailable: int = 0
    expired_in_queue: int = 0
    expired_mid_decode: int = 0
    replica_failures: int = 0
    failovers: int = 0
    dispatched_batches: int = 0
    peak_queue: int = 0
    queue_wait_total: float = 0.0
    queue_wait_max: float = 0.0
    service_seconds: float = 0.0

    @property
    def shed(self) -> int:
        """Requests refused at the door (the 429s)."""
        return self.shed_quota + self.shed_queue_full + self.shed_unavailable


@dataclass
class _Ticket:
    """Gateway-internal state for one admitted request."""

    id: int
    request: GatewayRequest
    future: asyncio.Future
    admitted_at: float
    enqueued_at: float
    deadline_at: Optional[float]
    attempts: int = 0
    queue_wait: float = 0.0
    cancel_reason: Optional[str] = None

    def heap_key(self) -> Tuple[int, int]:
        return (self.request.priority, self.id)


class Gateway:
    """Asyncio front door over a set of engine replicas.

    See the module docstring for the admission/shedding/failover story
    and the shared-state lock discipline. Lifecycle::

        gateway = Gateway([replica], clock=aclock, quotas={"t0": bucket})
        await gateway.start()
        result = await gateway.submit(GatewayRequest(BatchRequest(ids)))
        await gateway.stop()
    """

    def __init__(
        self,
        replicas: Sequence[Replica],
        clock: Optional[AsyncClock] = None,
        max_queue: int = 64,
        quotas: Optional[Dict[str, TokenBucket]] = None,
        max_attempts: int = 3,
        probe_interval: float = 1.0,
        decode_in_thread: bool = True,
        completion_cache: Optional[SemanticCache] = None,
    ) -> None:
        if not replicas:
            raise GenerationError("a gateway needs at least one replica")
        if max_queue <= 0:
            raise GenerationError("max_queue must be positive")
        if max_attempts <= 0:
            raise GenerationError("max_attempts must be positive")
        self.replicas = list(replicas)
        self.clock: AsyncClock = clock if clock is not None else AsyncSystemClock()
        self.max_queue = max_queue
        self.quotas: Dict[str, TokenBucket] = dict(quotas or {})
        self.max_attempts = max_attempts
        self.probe_interval = probe_interval
        self.decode_in_thread = decode_in_thread
        self.completion_cache = completion_cache
        self.stats = GatewayStats()
        self._heap: List[Tuple[int, int, _Ticket]] = []
        self._next_id = 0
        self._work = asyncio.Event()
        self._cancelled: Set[int] = set()
        self._cancel_lock = threading.Lock()
        self._dispatchers: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Spawn one dispatch task per replica (idempotent)."""
        if self._running:
            return
        self._mark_started()
        for replica in self.replicas:
            self._track_dispatcher(
                asyncio.ensure_future(self._dispatch_loop(replica))
            )

    async def stop(self) -> None:
        """Cancel the dispatchers and release the decode threads."""
        dispatchers = self._mark_stopped()
        for task in dispatchers:
            task.cancel()
        for task in dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._release_executor()

    def _mark_started(self) -> None:
        self._running = True
        if self.decode_in_thread and self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=len(self.replicas),
                thread_name_prefix="gateway-decode",
            )

    def _track_dispatcher(self, task: asyncio.Task) -> None:
        self._dispatchers.append(task)

    def _mark_stopped(self) -> List[asyncio.Task]:
        self._running = False
        dispatchers, self._dispatchers = self._dispatchers, []
        return dispatchers

    def _release_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- admission (synchronous: atomic under the event loop) --------------
    def admit(self, request: GatewayRequest) -> _Ticket:
        """Admit or shed one request; returns its ticket.

        Raises :class:`~repro.errors.GatewayOverloadError` (tenant over
        quota / queue full) or :class:`~repro.errors.CircuitOpenError`
        (every replica's breaker is open) — the three shed verdicts a
        front door can return without doing any work.

        With a :class:`~repro.serving.semcache.SemanticCache`
        configured, an exact repeat of a completed request resolves
        here — *before* the tenant's quota bucket is debited or a queue
        slot taken — so cached traffic can never shed a tenant.
        """
        self.stats.submitted += 1
        cached = self._cache_lookup(request)
        if cached is not None:
            return cached
        bucket = self.quotas.get(request.tenant)
        if bucket is not None and not bucket.try_acquire():
            self.stats.shed_quota += 1
            raise GatewayOverloadError(
                f"tenant {request.tenant!r} is over its admission quota",
                reason="tenant-quota",
                retry_after=1.0 / bucket.rate,
            )
        if len(self._heap) >= self.max_queue:
            self.stats.shed_queue_full += 1
            raise GatewayOverloadError(
                f"admission queue is full ({self.max_queue} requests)",
                reason="queue-full",
            )
        if not any(replica.breaker.allow() for replica in self.replicas):
            self.stats.shed_unavailable += 1
            raise CircuitOpenError(
                "every replica's circuit breaker is open; the gateway "
                "has nowhere to send work"
            )
        now = self.clock.monotonic()
        ticket = _Ticket(
            id=self._next_id,
            request=request,
            future=asyncio.get_running_loop().create_future(),
            admitted_at=now,
            enqueued_at=now,
            deadline_at=(
                now + request.deadline if request.deadline is not None else None
            ),
        )
        self._next_id += 1
        self.stats.admitted += 1
        self._push(ticket)
        return ticket

    def _cache_lookup(self, request: GatewayRequest) -> Optional[_Ticket]:
        """Serve an exact repeat from the completion cache, if any.

        A hit never touches quota, queue, or breakers: the ticket comes
        back already resolved (replica ``"cache"``, zero wait/latency)
        and is not counted as admitted — the settlement identity over
        admitted requests stays intact.
        """
        if self.completion_cache is None:
            return None
        key = completion_request_key(request.request)
        if key is None:
            return None
        hit = self.completion_cache.lookup(key, group="completions")
        if hit is None:
            return None
        self.stats.cache_hits += 1
        now = self.clock.monotonic()
        ticket = _Ticket(
            id=self._next_id,
            request=request,
            future=asyncio.get_running_loop().create_future(),
            admitted_at=now,
            enqueued_at=now,
            deadline_at=None,
        )
        self._next_id += 1
        ticket.future.set_result(
            GatewayResult(
                sequences=[list(ids) for ids in hit.value],
                replica="cache",
                attempts=0,
                queue_wait=0.0,
                latency=0.0,
            )
        )
        return ticket

    async def submit(self, request: GatewayRequest) -> GatewayResult:
        """Admit ``request`` and await its completion.

        If the awaiting task is cancelled (the client disconnected),
        the request is cancelled mid-stream and its slot freed.
        """
        ticket = self.admit(request)
        try:
            return await ticket.future
        except asyncio.CancelledError:
            self.cancel(ticket)
            raise

    def cancel(self, ticket: _Ticket) -> None:
        """Cancel an admitted request (client disconnect).

        Thread-visible: decode worker threads read the cancellation set
        between decode steps, so a mid-stream request retires at its
        next step without disturbing the rest of the batch.
        """
        with self._cancel_lock:
            self._cancelled.add(ticket.id)
        if not ticket.future.done():
            ticket.future.cancel()

    def _snapshot_cancelled(self) -> Set[int]:
        """Read the cancellation set (safe from decode threads)."""
        with self._cancel_lock:
            return set(self._cancelled)

    def _push(self, ticket: _Ticket) -> None:
        heapq.heappush(self._heap, (*ticket.heap_key(), ticket))
        self.stats.peak_queue = max(self.stats.peak_queue, len(self._heap))
        self._work.set()

    # -- dispatch ----------------------------------------------------------
    async def _dispatch_loop(self, replica: Replica) -> None:
        """Serve one replica until cancelled: take a batch, decode it."""
        while True:
            if not replica.breaker.allow():
                # Open circuit: sleep out (part of) the reset timeout,
                # then re-check; the half-open probe is real traffic.
                await self.clock.sleep(self.probe_interval)
                continue
            batch = self._take_batch(replica)
            if not batch:
                await self._work.wait()
                self._settle_work_event()
                continue
            await self._run_batch(replica, batch)

    def _settle_work_event(self) -> None:
        """Re-arm the work event once the wake-up has been consumed."""
        self._work.clear()
        if self._heap:
            self._work.set()

    def _take_batch(self, replica: Replica) -> List[_Ticket]:
        """Pop the dispatchable (priority, arrival)-prefix of the queue.

        Cancelled tickets are dropped, overdue tickets are rejected
        with :class:`~repro.errors.DeadlineExceededError` (the budget
        cannot pay for work that has not started — the
        :class:`~repro.reliability.retry.Retrier` rule), and the rest
        fill the replica's batch. A request wider than the batch cap
        still runs, alone, so oversized requests degrade throughput
        rather than deadlock the queue.
        """
        now = self.clock.monotonic()
        cancelled = self._snapshot_cancelled()
        batch: List[_Ticket] = []
        occupancy = 0
        while self._heap:
            ticket = self._heap[0][2]
            width = ticket.request.request.n
            if batch and occupancy + width > replica.max_batch:
                break
            heapq.heappop(self._heap)
            if ticket.future.done() or ticket.id in cancelled:
                self._finish_cancelled(ticket)
                continue
            if ticket.deadline_at is not None and now >= ticket.deadline_at:
                self.stats.expired_in_queue += 1
                self._resolve_error(
                    ticket,
                    DeadlineExceededError(
                        f"request {ticket.id} spent its whole "
                        f"{ticket.request.deadline:.3f}s budget in the queue"
                    ),
                )
                continue
            wait = now - ticket.enqueued_at
            ticket.queue_wait += wait
            self.stats.queue_wait_total += wait
            self.stats.queue_wait_max = max(self.stats.queue_wait_max, wait)
            batch.append(ticket)
            occupancy += width
        if batch:
            self.stats.dispatched_batches += 1
        return batch

    async def _run_batch(self, replica: Replica, batch: List[_Ticket]) -> None:
        """Decode one batch on ``replica``; charge service time; settle."""
        requests = [ticket.request.request for ticket in batch]
        hook = self._make_step_hook(replica, batch)
        try:
            results, service = await self._decode(replica, requests, hook)
        except ReproError as exc:
            self._on_replica_failure(replica, batch, exc)
            return
        if service > 0:
            await self.clock.sleep(service)
        self._finish_batch(replica, batch, results, service)

    async def _decode(
        self,
        replica: Replica,
        requests: List[BatchRequest],
        hook,
    ) -> Tuple[List[BatchResult], float]:
        if self._executor is None:
            # Inline mode (decode_in_thread=False): simplest possible
            # wiring for debugging; blocks the loop for the batch.
            return replica.decode(requests, hook)
        loop = asyncio.get_running_loop()
        return await self.clock.wait_external(
            loop.run_in_executor(self._executor, replica.decode, requests, hook)
        )

    def _make_step_hook(self, replica: Replica, batch: List[_Ticket]):
        """Build the per-decode-step hook run inside the worker thread.

        The hook fires the replica's fault injector (a kill raises out
        of the decode), then cancels any request whose client
        disconnected or whose deadline the *projected* virtual
        completion time has overshot. It reads gateway state only via
        the lock-guarded cancellation snapshot and thread-safe clock
        reads; ticket writes here are read by the event loop strictly
        after the decode future resolves.
        """
        per_step = replica.service.seconds_per_decode_step
        steps = 0

        def on_step(active: List[int], queued: List[int]) -> List[int]:
            nonlocal steps
            if replica.injector is not None:
                replica.injector.before_request(f"{replica.name}:decode-step")
            steps += 1
            projected = self.clock.monotonic() + steps * per_step
            cancelled = self._snapshot_cancelled()
            victims: List[int] = []
            for index in list(active) + list(queued):
                ticket = batch[index]
                if ticket.id in cancelled:
                    ticket.cancel_reason = "client"
                    victims.append(index)
                elif (
                    ticket.deadline_at is not None
                    and projected > ticket.deadline_at
                ):
                    ticket.cancel_reason = "deadline"
                    victims.append(index)
            return victims

        return on_step

    # -- settlement (synchronous: atomic under the event loop) -------------
    def _on_replica_failure(
        self, replica: Replica, batch: List[_Ticket], exc: ReproError
    ) -> None:
        """A replica died with ``batch`` in flight: re-admit everything.

        No ticket has been resolved (the whole decode raised), so
        re-queueing preserves exactly-once completion; arrival order
        and deadlines survive because tickets keep their ids and
        ``deadline_at``. A ticket out of attempts fails permanently
        with the replica's error.
        """
        replica.failures += 1
        replica.breaker.record_failure()
        self.stats.replica_failures += 1
        now = self.clock.monotonic()
        for ticket in batch:
            if ticket.future.cancelled():
                # The client disconnected while the replica was dying;
                # account the cancellation, don't re-admit.
                self._finish_cancelled(ticket)
                continue
            if ticket.future.done():
                continue
            ticket.attempts += 1
            if ticket.attempts >= self.max_attempts:
                self.stats.failed += 1
                self._resolve_error(ticket, exc)
                continue
            self.stats.failovers += 1
            ticket.enqueued_at = now
            ticket.cancel_reason = None
            self._push(ticket)

    def _on_decode_cancelled(self, ticket: _Ticket) -> None:
        if ticket.cancel_reason == "deadline":
            self.stats.expired_mid_decode += 1
            self._resolve_error(
                ticket,
                DeadlineExceededError(
                    f"request {ticket.id} overshot its "
                    f"{ticket.request.deadline:.3f}s budget mid-decode"
                ),
            )
        else:
            self._finish_cancelled(ticket)

    def _finish_cancelled(self, ticket: _Ticket) -> None:
        self.stats.cancelled += 1
        if not ticket.future.done():
            ticket.future.cancel()

    def _finish_batch(
        self,
        replica: Replica,
        batch: List[_Ticket],
        results: List[BatchResult],
        service: float,
    ) -> None:
        replica.breaker.record_success()
        replica.decodes += 1
        self.stats.service_seconds += service
        now = self.clock.monotonic()
        for ticket, result in zip(batch, results):
            if result.cancelled:
                self._on_decode_cancelled(ticket)
                continue
            if ticket.future.cancelled():
                # The client disconnected between the last decode step
                # and settlement: the output exists but nobody is
                # waiting. Counted as cancelled, never as completed.
                self._finish_cancelled(ticket)
                continue
            self.stats.completed += 1
            self._cache_store(ticket, result)
            self._resolve(
                ticket,
                GatewayResult(
                    sequences=result.sequences,
                    replica=replica.name,
                    attempts=ticket.attempts + 1,
                    queue_wait=ticket.queue_wait,
                    latency=now - ticket.admitted_at,
                ),
            )

    def _cache_store(self, ticket: _Ticket, result: BatchResult) -> None:
        """Remember a completed request's sequences for exact repeats."""
        if self.completion_cache is None:
            return
        key = completion_request_key(ticket.request.request)
        if key is None:
            return
        # Sequences hold generated ids only; the prompt is the skipped
        # prefill work, the sequences the skipped decode work.
        prompt_tokens = len(ticket.request.request.prompt_ids)
        completion_tokens = sum(len(ids) for ids in result.sequences)
        self.completion_cache.insert(
            key,
            [list(ids) for ids in result.sequences],
            group="completions",
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
        )

    def _resolve(self, ticket: _Ticket, result: GatewayResult) -> None:
        if ticket.future.done():
            raise GenerationError(
                f"request {ticket.id} resolved twice — exactly-once "
                "completion is broken"
            )
        ticket.future.set_result(result)

    def _resolve_error(self, ticket: _Ticket, exc: ReproError) -> None:
        if not ticket.future.done():
            ticket.future.set_exception(exc)

    # -- introspection -----------------------------------------------------
    def queue_depth(self) -> int:
        """Requests admitted but not yet dispatched."""
        return len(self._heap)

    def serving_stats(self) -> dict:
        """Gateway counters plus per-replica scheduler rollups."""
        return {
            "gateway": self.stats,
            "replicas": {
                replica.name: replica.scheduler.stats
                for replica in self.replicas
            },
        }
