"""Table schemas: ordered, typed columns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SQLAnalysisError
from repro.sql.types import SQLType


@dataclass(frozen=True)
class Column:
    """One column: a name and a type."""

    name: str
    sql_type: SQLType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SQLAnalysisError(f"invalid column name: {self.name!r}")


@dataclass
class TableSchema:
    """A named, ordered collection of columns."""

    name: str
    columns: List[Column]

    def __post_init__(self) -> None:
        seen = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SQLAnalysisError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            seen.add(lowered)

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def index_of(self, column_name: str) -> int:
        """Case-insensitive position lookup."""
        lowered = column_name.lower()
        for i, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return i
        raise SQLAnalysisError(
            f"no column {column_name!r} in table {self.name!r} "
            f"(has: {self.column_names})"
        )

    def column(self, column_name: str) -> Column:
        return self.columns[self.index_of(column_name)]

    def type_of(self, column_name: str) -> Optional[SQLType]:
        """The column's type, or ``None`` when the column is unknown.

        The non-raising companion of :meth:`column`, for analyses that
        collect findings instead of aborting on the first error.
        """
        lowered = column_name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column.sql_type
        return None

    def has_column(self, column_name: str) -> bool:
        lowered = column_name.lower()
        return any(c.name.lower() == lowered for c in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    @classmethod
    def build(cls, name: str, specs: Sequence[Tuple[str, SQLType]]) -> "TableSchema":
        """Build a schema from (name, type) pairs."""
        return cls(name=name, columns=[Column(n, t) for n, t in specs])
