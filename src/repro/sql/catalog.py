"""Catalog: the named-table namespace of a database."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CatalogError
from repro.sql.table import Table


class Catalog:
    """Case-insensitive mapping from table names to tables."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def add(self, table: Table, replace: bool = False) -> None:
        """Register a table under its schema name."""
        key = table.schema.name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {table.schema.name!r} already exists")
        self._tables[key] = table

    def get(self, name: str) -> Table:
        """Look up a table; raises :class:`CatalogError` when missing."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no table {name!r}; known tables: {self.names()}"
            ) from None

    def resolve(self, name: str) -> Optional[Table]:
        """Look up a table, returning ``None`` instead of raising.

        Static analyses use this to report a missing table as a finding
        rather than an exception.
        """
        return self._tables.get(name.lower())

    def drop(self, name: str) -> None:
        """Remove a table."""
        try:
            del self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r} to drop") from None

    def names(self) -> List[str]:
        """Registered table names (original casing), sorted."""
        return sorted(t.schema.name for t in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __len__(self) -> int:
        return len(self._tables)
