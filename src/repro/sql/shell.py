"""A minimal interactive SQL shell over the in-memory engine.

Run with ``python -m repro.sql.shell [csv files...]`` — each CSV loads
as a table named after the file. ``--durable DIR`` backs the session
with a :class:`~repro.durability.DurableDatabase` in ``DIR`` (WAL +
snapshot), so statements survive a crash and a restarted shell resumes
where the last one stopped. All persistence — the durable directory
and ``.export`` CSVs alike — goes through the atomic write helpers of
:mod:`repro.durability.io`; the shell never leaves a torn file behind.
Useful for poking at the engine and for demos; the same REPL loop is
importable for tests.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Iterable, List, Optional, TextIO

from repro.errors import ReproError
from repro.sql import Database, QueryResult

PROMPT = "sql> "
COMMANDS = """\
.tables              list tables
.schema <table>      show a table's columns
.export <table> <f>  write a table to a CSV file (atomic replace)
.quit                exit
any other input is executed as SQL (one statement per line)"""


def format_result(result: QueryResult) -> str:
    """Render a query result as an aligned text table."""
    if not result.columns:
        return f"ok ({result.rowcount} rows affected)"
    widths = [len(c) for c in result.columns]
    rendered_rows: List[List[str]] = []
    for row in result.rows:
        rendered = ["NULL" if v is None else str(v) for v in row]
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
        rendered_rows.append(rendered)
    header = "  ".join(c.ljust(w) for c, w in zip(result.columns, widths))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rendered_rows
    ]
    footer = f"({len(result.rows)} row{'s' if len(result.rows) != 1 else ''})"
    return "\n".join([header, separator, *body, footer])


def handle_line(db: Database, line: str) -> Optional[str]:
    """Process one input line; returns the text to print (None to quit)."""
    stripped = line.strip()
    if not stripped:
        return ""
    if stripped in (".quit", ".exit"):
        return None
    if stripped == ".help":
        return COMMANDS
    if stripped == ".tables":
        names = db.table_names()
        return "\n".join(names) if names else "(no tables)"
    if stripped.startswith(".schema"):
        parts = stripped.split()
        if len(parts) != 2:
            return "usage: .schema <table>"
        try:
            schema = db.table(parts[1]).schema
        except ReproError as exc:
            return f"error: {exc}"
        return "\n".join(f"{c.name}  {c.sql_type.value}" for c in schema.columns)
    if stripped.startswith(".export"):
        parts = stripped.split()
        if len(parts) != 3:
            return "usage: .export <table> <path>"
        try:
            written = db.table(parts[1]).to_csv(parts[2])
        except ReproError as exc:
            return f"error: {exc}"
        return f"exported {parts[1]} to {written}"
    try:
        return format_result(db.execute(stripped))
    except ReproError as exc:
        return f"error: {exc}"


def repl(
    db: Database,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> None:
    """Run the read-eval-print loop until EOF or ``.quit``."""
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    interactive = stdin is sys.stdin and stdin.isatty()
    while True:
        if interactive:
            stdout.write(PROMPT)
            stdout.flush()
        line = stdin.readline()
        if not line:
            break
        output = handle_line(db, line)
        if output is None:
            break
        if output:
            stdout.write(output + "\n")


def build_database(argv: List[str]):
    """Parse shell arguments into a (database, remaining-args) pair.

    ``--durable DIR`` opens (or resumes) a crash-safe
    :class:`~repro.durability.DurableDatabase` in ``DIR``; everything
    else is a CSV path to load as a table.
    """
    durable_dir: Optional[str] = None
    csv_paths: List[str] = []
    position = 0
    while position < len(argv):
        arg = argv[position]
        if arg == "--durable":
            if position + 1 >= len(argv):
                raise SystemExit("--durable needs a directory argument")
            durable_dir = argv[position + 1]
            position += 2
        else:
            csv_paths.append(arg)
            position += 1
    if durable_dir is not None:
        # Deferred import: repro.durability depends on repro.sql, so a
        # module-level import here would be circular.
        from repro.durability.database import DurableDatabase

        return DurableDatabase(durable_dir), csv_paths
    return Database(), csv_paths


def main(argv: Optional[List[str]] = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    db, csv_paths = build_database(argv)
    for csv_path in csv_paths:
        path = Path(csv_path)
        db.load_csv(path.stem, path)
        print(f"loaded table {path.stem!r} from {path}")
    print("repro SQL shell — .help for commands")
    repl(db)
    if hasattr(db, "close"):
        db.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
