"""A minimal interactive SQL shell over the in-memory engine.

Run with ``python -m repro.sql.shell [csv files...]`` — each CSV loads
as a table named after the file. Useful for poking at the engine and
for demos; the same REPL loop is importable for tests.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Iterable, List, Optional, TextIO

from repro.errors import ReproError
from repro.sql import Database, QueryResult

PROMPT = "sql> "
COMMANDS = """\
.tables            list tables
.schema <table>    show a table's columns
.quit              exit
any other input is executed as SQL (one statement per line)"""


def format_result(result: QueryResult) -> str:
    """Render a query result as an aligned text table."""
    if not result.columns:
        return f"ok ({result.rowcount} rows affected)"
    widths = [len(c) for c in result.columns]
    rendered_rows: List[List[str]] = []
    for row in result.rows:
        rendered = ["NULL" if v is None else str(v) for v in row]
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
        rendered_rows.append(rendered)
    header = "  ".join(c.ljust(w) for c, w in zip(result.columns, widths))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rendered_rows
    ]
    footer = f"({len(result.rows)} row{'s' if len(result.rows) != 1 else ''})"
    return "\n".join([header, separator, *body, footer])


def handle_line(db: Database, line: str) -> Optional[str]:
    """Process one input line; returns the text to print (None to quit)."""
    stripped = line.strip()
    if not stripped:
        return ""
    if stripped in (".quit", ".exit"):
        return None
    if stripped == ".help":
        return COMMANDS
    if stripped == ".tables":
        names = db.table_names()
        return "\n".join(names) if names else "(no tables)"
    if stripped.startswith(".schema"):
        parts = stripped.split()
        if len(parts) != 2:
            return "usage: .schema <table>"
        try:
            schema = db.table(parts[1]).schema
        except ReproError as exc:
            return f"error: {exc}"
        return "\n".join(f"{c.name}  {c.sql_type.value}" for c in schema.columns)
    try:
        return format_result(db.execute(stripped))
    except ReproError as exc:
        return f"error: {exc}"


def repl(
    db: Database,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> None:
    """Run the read-eval-print loop until EOF or ``.quit``."""
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    interactive = stdin is sys.stdin and stdin.isatty()
    while True:
        if interactive:
            stdout.write(PROMPT)
            stdout.flush()
        line = stdin.readline()
        if not line:
            break
        output = handle_line(db, line)
        if output is None:
            break
        if output:
            stdout.write(output + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    db = Database()
    for csv_path in argv:
        path = Path(csv_path)
        db.load_csv(path.stem, path)
        print(f"loaded table {path.stem!r} from {path}")
    print("repro SQL shell — .help for commands")
    repl(db)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
