"""Expression evaluation over row environments, with SQL NULL semantics."""

from __future__ import annotations

import re
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import SQLAnalysisError, SQLExecutionError
from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.types import Value, sql_and, sql_not, sql_or


class RowEnv:
    """The variable bindings visible to an expression for one row.

    Stores qualified bindings ``(table, column) -> value`` and tracks
    which bare column names are ambiguous across tables.
    """

    __slots__ = ("qualified", "bare", "ambiguous")

    def __init__(self) -> None:
        self.qualified: Dict[Tuple[str, str], Value] = {}
        self.bare: Dict[str, Value] = {}
        self.ambiguous: set[str] = set()

    def bind(self, table: str, column: str, value: Value) -> None:
        table_l, column_l = table.lower(), column.lower()
        self.qualified[(table_l, column_l)] = value
        if column_l in self.bare and column_l not in self.ambiguous:
            self.ambiguous.add(column_l)
        self.bare[column_l] = value

    def lookup(self, column: str, table: Optional[str] = None) -> Value:
        column_l = column.lower()
        if table is not None:
            key = (table.lower(), column_l)
            try:
                return self.qualified[key]
            except KeyError:
                raise SQLAnalysisError(
                    f"unknown column {table}.{column}"
                ) from None
        if column_l in self.ambiguous:
            raise SQLAnalysisError(f"ambiguous column reference: {column}")
        try:
            return self.bare[column_l]
        except KeyError:
            raise SQLAnalysisError(f"unknown column {column}") from None

    def merged_with(self, other: "RowEnv") -> "RowEnv":
        """A new env combining this row's bindings with another's."""
        out = RowEnv()
        for (table, column), value in self.qualified.items():
            out.bind(table, column, value)
        for (table, column), value in other.qualified.items():
            out.bind(table, column, value)
        return out


_SCALAR_FUNCS = {
    "ABS": lambda v: None if v is None else abs(v),
    "LENGTH": lambda v: None if v is None else len(str(v)),
    "UPPER": lambda v: None if v is None else str(v).upper(),
    "LOWER": lambda v: None if v is None else str(v).lower(),
}


def evaluate(expr: Expr, env: RowEnv) -> Value:
    """Evaluate an expression over one row (no aggregates allowed)."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return env.lookup(expr.name, expr.table)
    if isinstance(expr, Star):
        raise SQLAnalysisError("'*' is only valid in select lists and COUNT(*)")
    if isinstance(expr, UnaryOp):
        return _eval_unary(expr, env)
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, env)
    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, env)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, InList):
        return _eval_in(expr, env)
    if isinstance(expr, Between):
        return _eval_between(expr, env)
    if isinstance(expr, CaseWhen):
        for condition, result in expr.branches:
            if evaluate(condition, env) is True:
                return evaluate(result, env)
        return evaluate(expr.default, env) if expr.default is not None else None
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            raise SQLAnalysisError(
                f"aggregate {expr.name} is not allowed in this context"
            )
        return _eval_scalar_func(expr, env)
    raise SQLExecutionError(f"cannot evaluate expression node {type(expr).__name__}")


def _eval_unary(expr: UnaryOp, env: RowEnv) -> Value:
    value = evaluate(expr.operand, env)
    if expr.op == "NOT":
        return sql_not(_as_truth(value))
    if expr.op == "-":
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SQLExecutionError(f"cannot negate {value!r}")
        return -value
    raise SQLExecutionError(f"unknown unary operator {expr.op!r}")


def _eval_binary(expr: BinaryOp, env: RowEnv) -> Value:
    op = expr.op
    if op == "AND":
        return sql_and(
            _as_truth(evaluate(expr.left, env)), _as_truth(evaluate(expr.right, env))
        )
    if op == "OR":
        return sql_or(
            _as_truth(evaluate(expr.left, env)), _as_truth(evaluate(expr.right, env))
        )

    left = evaluate(expr.left, env)
    right = evaluate(expr.right, env)
    if op == "LIKE":
        return _eval_like(left, right)
    if left is None or right is None:
        return None

    if op in ("=", "<>", "<", "<=", ">", ">="):
        return _compare(op, left, right)
    if op == "||":
        return str(left) + str(right)
    if op in ("+", "-", "*", "/", "%"):
        return _arith(op, left, right)
    raise SQLExecutionError(f"unknown binary operator {op!r}")


def _numeric(value: Value) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return value  # type: ignore[return-value]
    raise SQLExecutionError(f"expected a number, got {value!r}")


def _arith(op: str, left: Value, right: Value) -> Value:
    a, b = _numeric(left), _numeric(right)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            return None  # SQL engines differ; NULL keeps queries total.
        result = a / b
        return result
    if op == "%":
        if b == 0:
            return None
        return a % b
    raise SQLExecutionError(f"unknown arithmetic operator {op!r}")


def _compare(op: str, left: Value, right: Value) -> Optional[bool]:
    # Numbers compare numerically (bool as 0/1); strings lexicographically.
    left_num = isinstance(left, (int, float, bool))
    right_num = isinstance(right, (int, float, bool))
    if left_num != right_num:
        raise SQLExecutionError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    if left_num:
        a, b = _numeric(left), _numeric(right)
    else:
        a, b = str(left), str(right)  # type: ignore[assignment]
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise SQLExecutionError(f"unknown comparison {op!r}")


def _eval_like(left: Value, right: Value) -> Optional[bool]:
    if left is None or right is None:
        return None
    # re.escape leaves % and _ untouched (they are not regex-special),
    # so translating them to .*/. after escaping is safe.
    pattern = re.escape(str(right)).replace("%", ".*").replace("_", ".")
    return re.fullmatch(pattern, str(left)) is not None


def _eval_in(expr: InList, env: RowEnv) -> Optional[bool]:
    value = evaluate(expr.operand, env)
    if value is None:
        return None
    saw_null = False
    for item in expr.items:
        candidate = evaluate(item, env)
        if candidate is None:
            saw_null = True
            continue
        try:
            if _compare("=", value, candidate) is True:
                return False if expr.negated else True
        except SQLExecutionError:
            continue  # type-incompatible list item can never match
    if saw_null:
        return None
    return True if expr.negated else False


def _eval_between(expr: Between, env: RowEnv) -> Optional[bool]:
    value = evaluate(expr.operand, env)
    low = evaluate(expr.low, env)
    high = evaluate(expr.high, env)
    if value is None or low is None or high is None:
        return None
    result = sql_and(_compare(">=", value, low), _compare("<=", value, high))
    return sql_not(result) if expr.negated else result


def _eval_scalar_func(expr: FuncCall, env: RowEnv) -> Value:
    name = expr.name.upper()
    if name == "ROUND":
        if not 1 <= len(expr.args) <= 2:
            raise SQLAnalysisError("ROUND takes one or two arguments")
        value = evaluate(expr.args[0], env)
        if value is None:
            return None
        digits = 0
        if len(expr.args) == 2:
            digits_value = evaluate(expr.args[1], env)
            digits = int(_numeric(digits_value)) if digits_value is not None else 0
        return round(_numeric(value), digits)
    func = _SCALAR_FUNCS.get(name)
    if func is None:
        raise SQLAnalysisError(f"unknown function {expr.name!r}")
    if len(expr.args) != 1:
        raise SQLAnalysisError(f"{name} takes exactly one argument")
    return func(evaluate(expr.args[0], env))


def _as_truth(value: Value) -> Optional[bool]:
    """Interpret a value as a SQL truth value."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise SQLExecutionError(f"expected a boolean, got {value!r}")
