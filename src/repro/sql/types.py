"""SQL value types, coercion, and three-valued (NULL) logic."""

from __future__ import annotations

import enum
from typing import Optional, Union

from repro.errors import SQLExecutionError

# A SQL value: NULL is represented as Python None.
Value = Union[int, float, str, bool, None]


class SQLType(enum.Enum):
    """Column data types."""

    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOL = "BOOL"

    @classmethod
    def parse(cls, name: str) -> "SQLType":
        """Parse a type name (accepting common synonyms)."""
        normalized = name.strip().upper()
        synonyms = {
            "INT": cls.INT, "INTEGER": cls.INT, "BIGINT": cls.INT,
            "FLOAT": cls.FLOAT, "REAL": cls.FLOAT, "DOUBLE": cls.FLOAT,
            "NUMERIC": cls.FLOAT, "DECIMAL": cls.FLOAT,
            "TEXT": cls.TEXT, "VARCHAR": cls.TEXT, "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOL": cls.BOOL, "BOOLEAN": cls.BOOL,
        }
        try:
            return synonyms[normalized]
        except KeyError:
            raise SQLExecutionError(f"unknown SQL type: {name!r}") from None


def is_null(value: Value) -> bool:
    """True iff ``value`` is SQL NULL."""
    return value is None


def coerce(value: Value, sql_type: SQLType) -> Value:
    """Coerce a Python value to a column type (NULL passes through)."""
    if value is None:
        return None
    try:
        if sql_type is SQLType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, str):
                return int(value.strip())
            return int(value)
        if sql_type is SQLType.FLOAT:
            return float(value)
        if sql_type is SQLType.TEXT:
            return str(value)
        if sql_type is SQLType.BOOL:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
                raise ValueError(value)
            return bool(value)
    except (ValueError, TypeError) as exc:
        raise SQLExecutionError(
            f"cannot coerce {value!r} to {sql_type.value}"
        ) from exc
    raise SQLExecutionError(f"unhandled type {sql_type}")


def infer_type(value: Value) -> SQLType:
    """Infer a column type from a sample Python value."""
    if isinstance(value, bool):
        return SQLType.BOOL
    if isinstance(value, int):
        return SQLType.INT
    if isinstance(value, float):
        return SQLType.FLOAT
    return SQLType.TEXT


# -- three-valued logic ----------------------------------------------------
TruthValue = Optional[bool]  # True / False / None (unknown)


def sql_and(a: TruthValue, b: TruthValue) -> TruthValue:
    """Kleene AND: False dominates, otherwise unknown propagates."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def sql_or(a: TruthValue, b: TruthValue) -> TruthValue:
    """Kleene OR: True dominates, otherwise unknown propagates."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def sql_not(a: TruthValue) -> TruthValue:
    """Kleene NOT: unknown stays unknown."""
    if a is None:
        return None
    return not a
