"""In-memory tables: schema + row storage with type coercion."""

from __future__ import annotations

import csv
from io import StringIO
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import SQLExecutionError
from repro.sql.schema import Column, TableSchema
from repro.sql.types import SQLType, Value, coerce, infer_type

Row = Tuple[Value, ...]


class Table:
    """A materialized relation: a schema plus a list of tuples."""

    def __init__(self, schema: TableSchema, rows: Optional[Iterable[Sequence[Value]]] = None) -> None:
        self.schema = schema
        self.rows: List[Row] = []
        self._indexes: Dict[str, Dict[Value, List[int]]] = {}
        self._dirty_indexes = False
        if rows is not None:
            for row in rows:
                self.insert(row)

    # -- mutation ------------------------------------------------------------
    def insert(self, row: Sequence[Value]) -> None:
        """Insert one row, coercing values to column types."""
        if len(row) != len(self.schema):
            raise SQLExecutionError(
                f"row has {len(row)} values, table {self.schema.name!r} "
                f"has {len(self.schema)} columns"
            )
        coerced = tuple(
            coerce(value, column.sql_type)
            for value, column in zip(row, self.schema.columns)
        )
        self.rows.append(coerced)
        for column_lower, index in self._indexes.items():
            position = self.schema.index_of(column_lower)
            index.setdefault(coerced[position], []).append(len(self.rows) - 1)

    # -- hash indexes --------------------------------------------------------
    def create_index(self, column_name: str) -> None:
        """Build a hash index (value -> row positions) on one column."""
        self.schema.index_of(column_name)  # validates the column exists
        self._indexes[column_name.lower()] = {}
        self._rebuild_indexes()

    def has_index(self, column_name: str) -> bool:
        return column_name.lower() in self._indexes

    def index_names(self) -> List[str]:
        return sorted(self._indexes)

    def invalidate_indexes(self) -> None:
        """Mark indexes stale after bulk row mutation (UPDATE/DELETE)."""
        self._dirty_indexes = True

    def index_lookup(self, column_name: str, value: Value) -> List[int]:
        """Row positions whose ``column_name`` equals ``value``."""
        key = column_name.lower()
        if key not in self._indexes:
            raise SQLExecutionError(
                f"no index on {self.schema.name}.{column_name}"
            )
        if self._dirty_indexes:
            self._rebuild_indexes()
        return list(self._indexes[key].get(value, ()))

    def _rebuild_indexes(self) -> None:
        for column_lower in self._indexes:
            position = self.schema.index_of(column_lower)
            fresh: Dict[Value, List[int]] = {}
            for row_position, row in enumerate(self.rows):
                fresh.setdefault(row[position], []).append(row_position)
            self._indexes[column_lower] = fresh
        self._dirty_indexes = False

    def insert_many(self, rows: Iterable[Sequence[Value]]) -> int:
        """Insert many rows; return the count."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    # -- access --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def column_values(self, column_name: str) -> List[Value]:
        """All values of one column, in row order."""
        idx = self.schema.index_of(column_name)
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, Value]]:
        """Rows as dictionaries keyed by column name."""
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self.rows]

    # -- construction helpers ----------------------------------------------------
    @classmethod
    def from_dicts(
        cls, name: str, records: Sequence[Dict[str, Value]]
    ) -> "Table":
        """Build a table from dict records, inferring column types."""
        if not records:
            raise SQLExecutionError("cannot infer a schema from zero records")
        column_names = list(records[0].keys())
        columns = []
        for column_name in column_names:
            sample = next(
                (r[column_name] for r in records if r.get(column_name) is not None),
                None,
            )
            columns.append(Column(column_name, infer_type(sample)))
        schema = TableSchema(name=name, columns=columns)
        table = cls(schema)
        for record in records:
            table.insert([record.get(c) for c in column_names])
        return table

    # -- CSV I/O --------------------------------------------------------------
    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the table to a CSV file (header + rows, NULL as empty).

        The file is replaced atomically (temp + fsync + rename), so a
        crash mid-export never leaves a truncated CSV behind.
        """
        buffer = StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.schema.column_names)
        for row in self.rows:
            writer.writerow(["" if v is None else v for v in row])
        # Deferred import: repro.durability depends on repro.sql, so a
        # module-level import here would be circular.
        from repro.durability.io import atomic_write_text

        return atomic_write_text(path, buffer.getvalue(), label="csv")

    @classmethod
    def from_csv(
        cls,
        name: str,
        path: Union[str, Path],
        types: Optional[Sequence[SQLType]] = None,
    ) -> "Table":
        """Load a CSV with a header row; empty cells become NULL.

        Without explicit ``types``, each column's type is inferred from
        the values (INT if all parse as ints, else FLOAT, else TEXT).
        """
        path = Path(path)
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise SQLExecutionError(f"{path} is empty") from None
            raw_rows = [row for row in reader]
        if types is None:
            types = [_infer_csv_type(raw_rows, i) for i in range(len(header))]
        schema = TableSchema.build(name, list(zip(header, types)))
        table = cls(schema)
        for raw in raw_rows:
            table.insert([None if cell == "" else cell for cell in raw])
        return table


def _infer_csv_type(rows: List[List[str]], index: int) -> SQLType:
    """Infer a column type from string cells."""
    saw_value = False
    all_int, all_float = True, True
    for row in rows:
        cell = row[index] if index < len(row) else ""
        if cell == "":
            continue
        saw_value = True
        try:
            int(cell)
        except ValueError:
            all_int = False
            try:
                float(cell)
            except ValueError:
                all_float = False
                break
    if not saw_value:
        return SQLType.TEXT
    if all_int:
        return SQLType.INT
    if all_float:
        return SQLType.FLOAT
    return SQLType.TEXT
