"""Abstract syntax tree for the supported SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.sql.types import SQLType, Value


# -- expressions -------------------------------------------------------------
class Expr:
    """Base class of all expression nodes."""

    def sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean, or NULL."""

    value: Value

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly table-qualified) column reference."""

    name: str
    table: Optional[str] = None

    def sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` (or ``t.*``) in a select list or COUNT(*)."""

    table: Optional[str] = None

    def sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Infix operation: arithmetic, comparison, AND/OR, LIKE."""

    op: str
    left: Expr
    right: Expr

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Prefix operation: NOT, unary minus."""

    op: str
    operand: Expr

    def sql(self) -> str:
        if self.op.upper() == "NOT":
            return f"(NOT {self.operand.sql()})"
        return f"({self.op}{self.operand.sql()})"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def sql(self) -> str:
        middle = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.sql()} {middle})"


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expr
    items: Tuple[Expr, ...]
    negated: bool = False

    def sql(self) -> str:
        items = ", ".join(item.sql() for item in self.items)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} ({items}))"


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand.sql()} {keyword} {self.low.sql()} AND {self.high.sql()})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call; aggregates are COUNT/SUM/AVG/MIN/MAX."""

    name: str
    args: Tuple[Expr, ...]
    distinct: bool = False

    AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in self.AGGREGATES

    def sql(self) -> str:
        inner = ", ".join(a.sql() for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name.upper()}({inner})"


@dataclass(frozen=True)
class Subquery(Expr):
    """A parenthesized scalar subquery: ``(SELECT agg FROM ...)``.

    Only uncorrelated subqueries are supported; they are materialized
    to a literal before the outer query runs.
    """

    query: "SelectQuery"

    def sql(self) -> str:
        return f"({self.query.sql()})"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT col FROM ...)`` (uncorrelated)."""

    operand: Expr
    query: "SelectQuery"
    negated: bool = False

    def sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} ({self.query.sql()}))"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """``CASE WHEN cond THEN value [...] [ELSE value] END``."""

    branches: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None

    def sql(self) -> str:
        parts = ["CASE"]
        for cond, value in self.branches:
            parts.append(f"WHEN {cond.sql()} THEN {value.sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.sql()}")
        parts.append("END")
        return " ".join(parts)


def expr_children(expr: Expr) -> Tuple[Expr, ...]:
    """The direct sub-expressions of a node.

    Subquery bodies are *not* treated as children — they carry their own
    scope, so analyses must recurse into them explicitly.
    """
    if isinstance(expr, BinaryOp):
        return (expr.left, expr.right)
    if isinstance(expr, (UnaryOp, IsNull)):
        return (expr.operand,)
    if isinstance(expr, InList):
        return (expr.operand,) + expr.items
    if isinstance(expr, Between):
        return (expr.operand, expr.low, expr.high)
    if isinstance(expr, FuncCall):
        return expr.args
    if isinstance(expr, CaseWhen):
        children: List[Expr] = []
        for condition, value in expr.branches:
            children.append(condition)
            children.append(value)
        if expr.default is not None:
            children.append(expr.default)
        return tuple(children)
    if isinstance(expr, InSubquery):
        return (expr.operand,)
    return ()


def walk_expr(expr: Expr):
    """Yield ``expr`` and every nested sub-expression, depth-first."""
    yield expr
    for child in expr_children(expr):
        yield from walk_expr(child)


# -- query structure ------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    """One output column: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None

    def sql(self) -> str:
        return f"{self.expr.sql()} AS {self.alias}" if self.alias else self.expr.sql()

    def output_name(self, position: int) -> str:
        """The name this item contributes to the result schema."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return f"col{position}"


@dataclass(frozen=True)
class TableRef:
    """A table in FROM/JOIN, with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        return self.alias or self.name

    def sql(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class JoinClause:
    """One JOIN: kind is INNER, LEFT, or CROSS."""

    kind: str
    table: TableRef
    condition: Optional[Expr] = None

    def sql(self) -> str:
        if self.kind == "CROSS":
            return f"CROSS JOIN {self.table.sql()}"
        return f"{self.kind} JOIN {self.table.sql()} ON {self.condition.sql()}"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    descending: bool = False

    def sql(self) -> str:
        return f"{self.expr.sql()} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class SelectQuery:
    """A full SELECT statement."""

    items: Tuple[SelectItem, ...]
    table: TableRef
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    def sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.sql() for item in self.items))
        parts.append(f"FROM {self.table.sql()}")
        for join in self.joins:
            parts.append(join.sql())
        if self.where is not None:
            parts.append(f"WHERE {self.where.sql()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.sql() for e in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.sql()}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclass(frozen=True)
class CreateTable:
    """``CREATE TABLE name (col type, ...)``."""

    name: str
    columns: Tuple[Tuple[str, SQLType], ...]

    def sql(self) -> str:
        cols = ", ".join(f"{n} {t.value}" for n, t in self.columns)
        return f"CREATE TABLE {self.name} ({cols})"


@dataclass(frozen=True)
class InsertInto:
    """``INSERT INTO name [(cols)] VALUES (...), (...)``."""

    name: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expr, ...], ...]

    def sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        rows = ", ".join(
            "(" + ", ".join(v.sql() for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.name}{cols} VALUES {rows}"


@dataclass(frozen=True)
class UpdateTable:
    """``UPDATE name SET col = expr [, ...] [WHERE expr]``."""

    name: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None

    def sql(self) -> str:
        sets = ", ".join(f"{col} = {expr.sql()}" for col, expr in self.assignments)
        where = f" WHERE {self.where.sql()}" if self.where is not None else ""
        return f"UPDATE {self.name} SET {sets}{where}"


@dataclass(frozen=True)
class DeleteFrom:
    """``DELETE FROM name [WHERE expr]``."""

    name: str
    where: Optional[Expr] = None

    def sql(self) -> str:
        where = f" WHERE {self.where.sql()}" if self.where is not None else ""
        return f"DELETE FROM {self.name}{where}"


@dataclass(frozen=True)
class CreateIndex:
    """``CREATE INDEX name ON table (column)`` — a hash index."""

    index_name: str
    table: str
    column: str

    def sql(self) -> str:
        return f"CREATE INDEX {self.index_name} ON {self.table} ({self.column})"


@dataclass(frozen=True)
class DropTable:
    """``DROP TABLE name``."""

    name: str

    def sql(self) -> str:
        return f"DROP TABLE {self.name}"


@dataclass(frozen=True)
class ExplainQuery:
    """``EXPLAIN <select>`` — returns the plan instead of rows."""

    query: "SelectQuery"

    def sql(self) -> str:
        return f"EXPLAIN {self.query.sql()}"


Statement = Union[
    SelectQuery, CreateTable, InsertInto, UpdateTable, DeleteFrom, DropTable,
    ExplainQuery, CreateIndex,
]
