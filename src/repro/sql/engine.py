"""The ``Database`` facade: execute SQL strings against a catalog."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SQLAnalysisError, SQLExecutionError
from repro.sql.ast import (
    CreateIndex,
    CreateTable,
    DeleteFrom,
    DropTable,
    ExplainQuery,
    InsertInto,
    SelectQuery,
    UpdateTable,
)
from repro.sql.catalog import Catalog
from repro.sql.eval import RowEnv, evaluate
from repro.sql.executor import (
    ExecutionStats,
    ExecutorOptions,
    execute_select,
    explain_plan,
)
from repro.sql.parser import parse_sql
from repro.sql.schema import TableSchema
from repro.sql.table import Table
from repro.sql.types import Value


@dataclass
class QueryResult:
    """The result of one statement: column names plus rows.

    DDL/DML statements return an empty column list and report affected
    rows through ``rowcount``.
    """

    columns: List[str]
    rows: List[Tuple[Value, ...]]
    rowcount: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Value:
        """The single value of a 1x1 result (aggregate shortcuts)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SQLExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def to_dicts(self) -> List[Dict[str, Value]]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> List[Value]:
        """All values of one output column."""
        lowered = name.lower()
        for i, column in enumerate(self.columns):
            if column.lower() == lowered:
                return [row[i] for row in self.rows]
        raise SQLExecutionError(f"no output column {name!r} in {self.columns}")


class Database:
    """An in-memory SQL database: catalog + parser + executor.

    Example::

        db = Database()
        db.execute("CREATE TABLE t (id INT, name TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        result = db.execute("SELECT COUNT(*) FROM t")
        assert result.scalar() == 2
    """

    def __init__(self, options: Optional[ExecutorOptions] = None) -> None:
        self.catalog = Catalog()
        self.options = options or ExecutorOptions()
        self.last_stats = ExecutionStats()

    # -- direct table management ------------------------------------------------
    def add_table(self, table: Table, replace: bool = False) -> None:
        """Register an externally built table."""
        self.catalog.add(table, replace=replace)

    def table(self, name: str) -> Table:
        """Fetch a table by name."""
        return self.catalog.get(name)

    def load_csv(self, name: str, path: Union[str, Path]) -> Table:
        """Load a CSV file as a new table."""
        table = Table.from_csv(name, path)
        self.catalog.add(table)
        return table

    def table_names(self) -> List[str]:
        return self.catalog.names()

    # -- SQL entry point -----------------------------------------------------------
    def execute(self, sql: str) -> QueryResult:
        """Parse and run one SQL statement."""
        statement = parse_sql(sql)
        if isinstance(statement, SelectQuery):
            self.last_stats = ExecutionStats()
            columns, rows = execute_select(
                statement, self.catalog, self.options, self.last_stats
            )
            return QueryResult(columns=columns, rows=rows, rowcount=len(rows))
        if isinstance(statement, CreateTable):
            schema = TableSchema.build(statement.name, list(statement.columns))
            self.catalog.add(Table(schema))
            return QueryResult(columns=[], rows=[], rowcount=0)
        if isinstance(statement, InsertInto):
            return self._execute_insert(statement)
        if isinstance(statement, UpdateTable):
            return self._execute_update(statement)
        if isinstance(statement, DeleteFrom):
            return self._execute_delete(statement)
        if isinstance(statement, DropTable):
            self.catalog.drop(statement.name)
            return QueryResult(columns=[], rows=[], rowcount=0)
        if isinstance(statement, CreateIndex):
            self.catalog.get(statement.table).create_index(statement.column)
            return QueryResult(columns=[], rows=[], rowcount=0)
        if isinstance(statement, ExplainQuery):
            plan = explain_plan(statement.query, self.catalog, self.options)
            return QueryResult(
                columns=["plan"], rows=[(line,) for line in plan], rowcount=len(plan)
            )
        raise SQLExecutionError(f"unsupported statement {type(statement).__name__}")

    def _execute_update(self, statement: UpdateTable) -> QueryResult:
        table = self.catalog.get(statement.name)
        schema = table.schema
        # Validate assignment targets before touching any row.
        positions = [
            (schema.index_of(column), column, expr)
            for column, expr in statement.assignments
        ]
        updated = 0
        new_rows = []
        for row in table.rows:
            env = _row_env(statement.name, schema.column_names, row)
            if statement.where is not None and evaluate(statement.where, env) is not True:
                new_rows.append(row)
                continue
            values = list(row)
            for position, column, expr in positions:
                from repro.sql.types import coerce

                values[position] = coerce(
                    evaluate(expr, env), schema.columns[position].sql_type
                )
            new_rows.append(tuple(values))
            updated += 1
        table.rows = new_rows
        table.invalidate_indexes()
        return QueryResult(columns=[], rows=[], rowcount=updated)

    def _execute_delete(self, statement: DeleteFrom) -> QueryResult:
        table = self.catalog.get(statement.name)
        schema = table.schema
        kept = []
        deleted = 0
        for row in table.rows:
            env = _row_env(statement.name, schema.column_names, row)
            if statement.where is None or evaluate(statement.where, env) is True:
                deleted += 1
            else:
                kept.append(row)
        table.rows = kept
        table.invalidate_indexes()
        return QueryResult(columns=[], rows=[], rowcount=deleted)

    def _execute_insert(self, statement: InsertInto) -> QueryResult:
        table = self.catalog.get(statement.name)
        env = RowEnv()  # INSERT values are constant expressions
        schema = table.schema
        for value_row in statement.rows:
            values = [evaluate(expr, env) for expr in value_row]
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise SQLAnalysisError(
                        "INSERT column list and VALUES length differ"
                    )
                full: List[Value] = [None] * len(schema)
                for column_name, value in zip(statement.columns, values):
                    full[schema.index_of(column_name)] = value
                table.insert(full)
            else:
                table.insert(values)
        return QueryResult(columns=[], rows=[], rowcount=len(statement.rows))

    def explain_stats(self) -> ExecutionStats:
        """Execution counters of the most recent SELECT."""
        return self.last_stats


def _row_env(table_name: str, column_names: List[str], row: Tuple[Value, ...]) -> RowEnv:
    """Bind one stored row for WHERE/SET expression evaluation."""
    env = RowEnv()
    for column, value in zip(column_names, row):
        env.bind(table_name, column, value)
    return env
