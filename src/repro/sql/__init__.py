"""A from-scratch in-memory relational engine.

This is the execution substrate beneath the data-management applications
(Section 2.5): text-to-SQL needs an engine to measure *execution*
accuracy, CodexDB needs a baseline query processor, and the fact-checking
pipeline verifies claims by running aggregate queries.

Supported SQL: ``CREATE TABLE``, ``INSERT INTO ... VALUES``, and
``SELECT`` with projections, arithmetic, ``WHERE`` (three-valued NULL
logic), ``INNER/LEFT JOIN ... ON``, ``GROUP BY``/``HAVING``, aggregate
functions (COUNT/SUM/AVG/MIN/MAX), ``DISTINCT``, ``ORDER BY`` and
``LIMIT``.
"""

from repro.sql.types import SQLType, Value, is_null
from repro.sql.schema import Column, TableSchema
from repro.sql.table import Table
from repro.sql.catalog import Catalog
from repro.sql.engine import Database, QueryResult
from repro.sql.parser import parse_sql
from repro.sql.lexer import tokenize_sql

__all__ = [
    "SQLType",
    "Value",
    "is_null",
    "Column",
    "TableSchema",
    "Table",
    "Catalog",
    "Database",
    "QueryResult",
    "parse_sql",
    "tokenize_sql",
]
