"""Recursive-descent parser for the supported SQL dialect.

Grammar (roughly)::

    statement   := select | create | insert
    select      := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                   [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
                   [LIMIT n]
    join        := [INNER|LEFT [OUTER]|CROSS] JOIN table_ref [ON expr]
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := additive [comparison | IS [NOT] NULL | [NOT] IN (...)
                   | [NOT] BETWEEN additive AND additive | [NOT] LIKE additive]
    additive    := multiplicative (('+'|'-'|'||') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary       := '-' unary | primary
    primary     := literal | func '(' args ')' | column | '(' expr ')' | CASE ...
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    CreateIndex,
    CreateTable,
    DeleteFrom,
    DropTable,
    ExplainQuery,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    InsertInto,
    IsNull,
    Subquery,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectQuery,
    Star,
    Statement,
    TableRef,
    UnaryOp,
    UpdateTable,
)
from repro.sql.lexer import Token, TokenKind, tokenize_sql
from repro.sql.types import SQLType

_COMPARISONS = ("=", "<>", "!=", "<", "<=", ">", ">=")
_AGG_KEYWORDS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class _Parser:
    def __init__(self, tokens: List[Token], sql: str) -> None:
        self.tokens = tokens
        self.sql = sql
        self.position = 0

    # -- token plumbing -----------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def accept_keyword(self, *names: str) -> bool:
        if self.peek().is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> Token:
        token = self.peek()
        if not token.is_keyword(name):
            raise self.error(f"expected {name}")
        return self.advance()

    def accept_punct(self, text: str) -> bool:
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.text == text:
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> None:
        if not self.accept_punct(text):
            raise self.error(f"expected {text!r}")

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise self.error("expected an identifier")
        return self.advance().text

    def error(self, message: str) -> SQLSyntaxError:
        token = self.peek()
        return SQLSyntaxError(
            f"{message} at position {token.position} (near {token.text!r}) "
            f"in: {self.sql}"
        )

    # -- statements --------------------------------------------------------------
    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.is_keyword("SELECT"):
            statement: Statement = self.parse_select()
        elif token.is_keyword("CREATE"):
            statement = self.parse_create()
        elif token.is_keyword("INSERT"):
            statement = self.parse_insert()
        elif token.is_keyword("UPDATE"):
            statement = self.parse_update()
        elif token.is_keyword("DELETE"):
            statement = self.parse_delete()
        elif token.is_keyword("DROP"):
            statement = self.parse_drop()
        elif token.is_keyword("EXPLAIN"):
            self.advance()
            statement = ExplainQuery(query=self.parse_select())
        else:
            raise self.error(
                "expected SELECT, CREATE, INSERT, UPDATE, DELETE, DROP, or EXPLAIN"
            )
        self.accept_punct(";")
        if self.peek().kind is not TokenKind.EOF:
            raise self.error("unexpected trailing input")
        return statement

    def parse_update(self) -> UpdateTable:
        self.expect_keyword("UPDATE")
        name = self.expect_ident()
        self.expect_keyword("SET")
        assignments: List[Tuple[str, Expr]] = []
        while True:
            column = self.expect_ident()
            token = self.peek()
            if not (token.kind is TokenKind.OPERATOR and token.text == "="):
                raise self.error("expected '=' in SET assignment")
            self.advance()
            assignments.append((column, self.parse_expr()))
            if not self.accept_punct(","):
                break
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return UpdateTable(name=name, assignments=tuple(assignments), where=where)

    def parse_delete(self) -> DeleteFrom:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        name = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return DeleteFrom(name=name, where=where)

    def parse_drop(self) -> DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        return DropTable(name=self.expect_ident())

    def parse_create(self) -> "Statement":
        self.expect_keyword("CREATE")
        if self.accept_keyword("INDEX"):
            index_name = self.expect_ident()
            self.expect_keyword("ON")
            table = self.expect_ident()
            self.expect_punct("(")
            column = self.expect_ident()
            self.expect_punct(")")
            return CreateIndex(index_name=index_name, table=table, column=column)
        self.expect_keyword("TABLE")
        name = self.expect_ident()
        self.expect_punct("(")
        columns: List[Tuple[str, SQLType]] = []
        while True:
            column_name = self.expect_ident()
            type_token = self.advance()
            if type_token.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                raise self.error("expected a column type")
            columns.append((column_name, SQLType.parse(type_token.text)))
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return CreateTable(name=name, columns=tuple(columns))

    def parse_insert(self) -> InsertInto:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        name = self.expect_ident()
        columns: List[str] = []
        if self.accept_punct("("):
            while True:
                columns.append(self.expect_ident())
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
        self.expect_keyword("VALUES")
        rows: List[Tuple[Expr, ...]] = []
        while True:
            self.expect_punct("(")
            values: List[Expr] = []
            while True:
                values.append(self.parse_expr())
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
            rows.append(tuple(values))
            if not self.accept_punct(","):
                break
        return InsertInto(name=name, columns=tuple(columns), rows=tuple(rows))

    def parse_select(self) -> SelectQuery:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        table = self.parse_table_ref()

        joins: List[JoinClause] = []
        while True:
            join = self.try_parse_join()
            if join is None:
                break
            joins.append(join)

        where = self.parse_expr() if self.accept_keyword("WHERE") else None

        group_by: Tuple[Expr, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            keys = [self.parse_expr()]
            while self.accept_punct(","):
                keys.append(self.parse_expr())
            group_by = tuple(keys)

        having = self.parse_expr() if self.accept_keyword("HAVING") else None

        order_by: Tuple[OrderItem, ...] = ()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            orders = [self.parse_order_item()]
            while self.accept_punct(","):
                orders.append(self.parse_order_item())
            order_by = tuple(orders)

        limit: Optional[int] = None
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.kind is not TokenKind.NUMBER or "." in token.text:
                raise self.error("LIMIT expects an integer")
            limit = int(token.text)

        return SelectQuery(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def try_parse_join(self) -> Optional[JoinClause]:
        token = self.peek()
        if token.is_keyword("JOIN"):
            self.advance()
            kind = "INNER"
        elif token.is_keyword("INNER") and self.peek(1).is_keyword("JOIN"):
            self.advance()
            self.advance()
            kind = "INNER"
        elif token.is_keyword("LEFT"):
            self.advance()
            self.accept_keyword("OUTER")
            self.expect_keyword("JOIN")
            kind = "LEFT"
        elif token.is_keyword("CROSS") and self.peek(1).is_keyword("JOIN"):
            self.advance()
            self.advance()
            kind = "CROSS"
        else:
            return None
        table = self.parse_table_ref()
        condition: Optional[Expr] = None
        if kind != "CROSS":
            self.expect_keyword("ON")
            condition = self.parse_expr()
        return JoinClause(kind=kind, table=table, condition=condition)

    def parse_table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias: Optional[str] = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind is TokenKind.IDENT:
            alias = self.advance().text
        return TableRef(name=name, alias=alias)

    def parse_select_item(self) -> SelectItem:
        token = self.peek()
        # "*" or "t.*"
        if token.kind is TokenKind.OPERATOR and token.text == "*":
            self.advance()
            return SelectItem(expr=Star())
        if (
            token.kind is TokenKind.IDENT
            and self.peek(1).kind is TokenKind.PUNCT
            and self.peek(1).text == "."
            and self.peek(2).kind is TokenKind.OPERATOR
            and self.peek(2).text == "*"
        ):
            table = self.advance().text
            self.advance()
            self.advance()
            return SelectItem(expr=Star(table=table))
        expr = self.parse_expr()
        alias: Optional[str] = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind is TokenKind.IDENT:
            alias = self.advance().text
        return SelectItem(expr=expr, alias=alias)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr=expr, descending=descending)

    # -- expressions -----------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = BinaryOp(op="OR", left=left, right=self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = BinaryOp(op="AND", left=left, right=self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_keyword("NOT"):
            return UnaryOp(op="NOT", operand=self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.kind is TokenKind.OPERATOR and token.text in _COMPARISONS:
            op = self.advance().text
            if op == "!=":
                op = "<>"
            return BinaryOp(op=op, left=left, right=self.parse_additive())
        if token.is_keyword("IS"):
            self.advance()
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNull(operand=left, negated=negated)
        negated = False
        if token.is_keyword("NOT") and self.peek(1).is_keyword("IN", "BETWEEN", "LIKE"):
            self.advance()
            negated = True
            token = self.peek()
        if token.is_keyword("IN"):
            self.advance()
            self.expect_punct("(")
            if self.peek().is_keyword("SELECT"):
                inner = self.parse_select()
                self.expect_punct(")")
                return InSubquery(operand=left, query=inner, negated=negated)
            items = [self.parse_expr()]
            while self.accept_punct(","):
                items.append(self.parse_expr())
            self.expect_punct(")")
            return InList(operand=left, items=tuple(items), negated=negated)
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return Between(operand=left, low=low, high=high, negated=negated)
        if token.is_keyword("LIKE"):
            self.advance()
            pattern = self.parse_additive()
            like = BinaryOp(op="LIKE", left=left, right=pattern)
            return UnaryOp(op="NOT", operand=like) if negated else like
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind is TokenKind.OPERATOR and token.text in ("+", "-", "||"):
                op = self.advance().text
                left = BinaryOp(op=op, left=left, right=self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind is TokenKind.OPERATOR and token.text in ("*", "/", "%"):
                op = self.advance().text
                left = BinaryOp(op=op, left=left, right=self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.kind is TokenKind.OPERATOR and token.text == "-":
            self.advance()
            return UnaryOp(op="-", operand=self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value=value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return Literal(value=token.text)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(value=None)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(value=True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(value=False)
        if token.is_keyword("CASE"):
            return self.parse_case()
        if token.is_keyword(*_AGG_KEYWORDS):
            name = self.advance().text
            return self.parse_func_args(name)
        if self.accept_punct("("):
            if self.peek().is_keyword("SELECT"):
                inner = self.parse_select()
                self.expect_punct(")")
                return Subquery(query=inner)
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.kind is TokenKind.IDENT:
            name = self.advance().text
            # Function call on a plain identifier (e.g. ABS(x)).
            if self.peek().kind is TokenKind.PUNCT and self.peek().text == "(":
                return self.parse_func_args(name)
            if self.accept_punct("."):
                column = self.expect_ident()
                return ColumnRef(name=column, table=name)
            return ColumnRef(name=name)
        raise self.error("expected an expression")

    def parse_func_args(self, name: str) -> FuncCall:
        self.expect_punct("(")
        distinct = self.accept_keyword("DISTINCT")
        args: List[Expr] = []
        token = self.peek()
        if token.kind is TokenKind.OPERATOR and token.text == "*":
            self.advance()
            args.append(Star())
        elif not (token.kind is TokenKind.PUNCT and token.text == ")"):
            args.append(self.parse_expr())
            while self.accept_punct(","):
                args.append(self.parse_expr())
        self.expect_punct(")")
        return FuncCall(name=name.upper(), args=tuple(args), distinct=distinct)

    def parse_case(self) -> CaseWhen:
        self.expect_keyword("CASE")
        branches: List[Tuple[Expr, Expr]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            value = self.parse_expr()
            branches.append((condition, value))
        if not branches:
            raise self.error("CASE requires at least one WHEN branch")
        default: Optional[Expr] = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expr()
        self.expect_keyword("END")
        return CaseWhen(branches=tuple(branches), default=default)


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement into an AST."""
    tokens = tokenize_sql(sql)
    return _Parser(tokens, sql).parse_statement()
