"""SQL lexer: turns a SQL string into a token stream."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE", "BETWEEN",
    "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "ON", "DISTINCT",
    "ASC", "DESC", "CREATE", "TABLE", "INSERT", "INTO", "VALUES",
    "TRUE", "FALSE", "COUNT", "SUM", "AVG", "MIN", "MAX", "CASE", "WHEN",
    "THEN", "ELSE", "END", "CROSS", "UPDATE", "SET", "DELETE", "DROP",
    "EXPLAIN", "INDEX",
}


class TokenKind(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def __repr__(self) -> str:
        return f"{self.kind.value}({self.text!r})"


_OPERATORS = ["<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%", "||"]
_PUNCT = set("(),.;")


def tokenize_sql(sql: str) -> List[Token]:
    """Tokenize a SQL string; raises :class:`SQLSyntaxError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        # String literal (single quotes, '' escapes a quote).
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= n:
                    raise SQLSyntaxError(f"unterminated string at position {i}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(TokenKind.STRING, "".join(parts), i))
            i = j + 1
            continue
        # Number (integer or decimal).
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            saw_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not saw_dot)):
                if sql[j] == ".":
                    saw_dot = True
                j += 1
            tokens.append(Token(TokenKind.NUMBER, sql[i:j], i))
            i = j
            continue
        # Identifier or keyword.
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenKind.IDENT, word, i))
            i = j
            continue
        # Double-quoted identifier.
        if ch == '"':
            j = sql.find('"', i + 1)
            if j < 0:
                raise SQLSyntaxError(f"unterminated identifier at position {i}")
            tokens.append(Token(TokenKind.IDENT, sql[i + 1: j], i))
            i = j + 1
            continue
        # Multi-char then single-char operators.
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenKind.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
