"""Query execution: joins, filtering, grouping, ordering, projection.

The executor materializes intermediate results as lists of
:class:`~repro.sql.eval.RowEnv` bindings. Two optimizations can be
toggled (the engine ablation benchmark flips them):

* **predicate pushdown** — WHERE conjuncts that reference a single
  table are applied before joins;
* **hash joins** — INNER equi-joins build a hash table on the join key
  instead of running a nested loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SQLAnalysisError, SQLExecutionError
from repro.sql.ast import (
    BinaryOp,
    Between,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectQuery,
    Star,
    Subquery,
    TableRef,
    UnaryOp,
)
from repro.sql.catalog import Catalog
from repro.sql.eval import RowEnv, evaluate
from repro.sql.table import Table
from repro.sql.types import Value


@dataclass
class ExecutorOptions:
    """Execution knobs (flipped by the engine-ablation benchmark)."""

    predicate_pushdown: bool = True
    hash_joins: bool = True


@dataclass
class ExecutionStats:
    """Counters describing the work one query performed."""

    rows_scanned: int = 0
    rows_joined: int = 0
    join_probes: int = 0
    index_lookups: int = 0


def execute_select(
    query: SelectQuery,
    catalog: Catalog,
    options: Optional[ExecutorOptions] = None,
    stats: Optional[ExecutionStats] = None,
) -> Tuple[List[str], List[Tuple[Value, ...]]]:
    """Run a SELECT; returns (column names, result rows)."""
    options = options or ExecutorOptions()
    stats = stats if stats is not None else ExecutionStats()

    query = _materialize_subqueries(query, catalog, options, stats)
    where_conjuncts = _split_conjuncts(query.where)
    pushed: set[int] = set()

    # FROM: bind the base table — through a hash index when an equality
    # conjunct targets an indexed column, else a full scan.
    rows = None
    if options.predicate_pushdown:
        for index, conjunct in enumerate(where_conjuncts):
            equality = _indexable_equality(conjunct, query.table, catalog)
            if equality is not None:
                column, value = equality
                rows = _index_scan(catalog, query.table, column, value, stats)
                pushed.add(index)
                break
    if rows is None:
        rows = _scan(catalog, query.table, stats)
    if options.predicate_pushdown:
        rows, pushed = _apply_single_table_predicates(
            rows, where_conjuncts, {query.table.effective_name.lower()}, pushed
        )

    # JOINs, applied left to right.
    bound_tables = {query.table.effective_name.lower()}
    for join in query.joins:
        right_rows = _scan(catalog, join.table, stats)
        if options.predicate_pushdown:
            right_rows, pushed = _apply_single_table_predicates(
                right_rows, where_conjuncts,
                {join.table.effective_name.lower()}, pushed,
            )
        right_columns = [
            (join.table.effective_name.lower(), column.lower())
            for column in catalog.get(join.table.name).schema.column_names
        ]
        rows = _join(rows, right_rows, join, options, stats, right_columns)
        bound_tables.add(join.table.effective_name.lower())

    # Remaining WHERE conjuncts.
    for index, conjunct in enumerate(where_conjuncts):
        if index in pushed:
            continue
        rows = [env for env in rows if evaluate(conjunct, env) is True]

    is_aggregate = bool(query.group_by) or _query_has_aggregates(query)
    if is_aggregate:
        # _execute_aggregate applies HAVING and ORDER BY internally.
        columns, result = _execute_aggregate(query, rows)
    else:
        if query.having is not None:
            raise SQLAnalysisError("HAVING requires GROUP BY or aggregates")
        columns, result = _execute_plain(query, rows)
        if query.order_by:
            result = _order_plain(query, rows, result, columns)
    if query.distinct:
        # Sorting happened first, and dedup is stable, so order survives.
        result = _distinct(result)
    if query.limit is not None:
        result = result[: query.limit]
    return columns, result


def _materialize_subqueries(
    query: SelectQuery,
    catalog: Catalog,
    options: ExecutorOptions,
    stats: ExecutionStats,
) -> SelectQuery:
    """Evaluate uncorrelated subqueries and splice their results in.

    A :class:`Subquery` becomes a :class:`Literal` (its 1x1 result); an
    :class:`InSubquery` becomes an :class:`InList` over the inner
    query's single output column.
    """

    def transform(expr: Expr) -> Expr:
        if isinstance(expr, Subquery):
            columns, rows = execute_select(expr.query, catalog, options, stats)
            if len(columns) != 1 or len(rows) != 1:
                raise SQLAnalysisError(
                    "a scalar subquery must return exactly one row and column, "
                    f"got {len(rows)}x{len(columns)}"
                )
            return Literal(rows[0][0])
        if isinstance(expr, InSubquery):
            columns, rows = execute_select(expr.query, catalog, options, stats)
            if len(columns) != 1:
                raise SQLAnalysisError(
                    "an IN subquery must return exactly one column, "
                    f"got {len(columns)}"
                )
            return InList(
                operand=transform(expr.operand),
                items=tuple(Literal(row[0]) for row in rows),
                negated=expr.negated,
            )
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                op=expr.op, left=transform(expr.left), right=transform(expr.right)
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(op=expr.op, operand=transform(expr.operand))
        if isinstance(expr, IsNull):
            return IsNull(operand=transform(expr.operand), negated=expr.negated)
        if isinstance(expr, InList):
            return InList(
                operand=transform(expr.operand),
                items=tuple(transform(i) for i in expr.items),
                negated=expr.negated,
            )
        if isinstance(expr, Between):
            return Between(
                operand=transform(expr.operand),
                low=transform(expr.low),
                high=transform(expr.high),
                negated=expr.negated,
            )
        if isinstance(expr, FuncCall):
            return FuncCall(
                name=expr.name,
                args=tuple(transform(a) for a in expr.args),
                distinct=expr.distinct,
            )
        if isinstance(expr, CaseWhen):
            return CaseWhen(
                branches=tuple(
                    (transform(c), transform(v)) for c, v in expr.branches
                ),
                default=transform(expr.default) if expr.default is not None else None,
            )
        return expr

    def has_subquery(expr: Optional[Expr]) -> bool:
        if expr is None:
            return False
        found = False

        def walk(node: Expr) -> None:
            nonlocal found
            if isinstance(node, (Subquery, InSubquery)):
                found = True
            for child in _children(node):
                walk(child)

        walk(expr)
        return found

    touched = (
        has_subquery(query.where)
        or has_subquery(query.having)
        or any(has_subquery(item.expr) for item in query.items)
    )
    if not touched:
        return query
    import dataclasses

    return dataclasses.replace(
        query,
        items=tuple(
            SelectItem(expr=transform(item.expr), alias=item.alias)
            if not isinstance(item.expr, Star)
            else item
            for item in query.items
        ),
        where=transform(query.where) if query.where is not None else None,
        having=transform(query.having) if query.having is not None else None,
    )


def _children(expr: Expr) -> List[Expr]:
    """Direct child expressions of a node (for generic walking)."""
    if isinstance(expr, BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, UnaryOp):
        return [expr.operand]
    if isinstance(expr, IsNull):
        return [expr.operand]
    if isinstance(expr, InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, InSubquery):
        return [expr.operand]
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, FuncCall):
        return list(expr.args)
    if isinstance(expr, CaseWhen):
        children = [c for pair in expr.branches for c in pair]
        if expr.default is not None:
            children.append(expr.default)
        return children
    return []


def explain_plan(
    query: SelectQuery,
    catalog: Catalog,
    options: Optional[ExecutorOptions] = None,
) -> List[str]:
    """Describe the execution strategy for a SELECT (the EXPLAIN output).

    Mirrors the decisions :func:`execute_select` makes: which WHERE
    conjuncts are pushed below the joins, and which join algorithm each
    JOIN clause uses.
    """
    options = options or ExecutorOptions()
    conjuncts = _split_conjuncts(query.where)
    lines: List[str] = []

    def pushed_to(table_name: str) -> List[str]:
        if not options.predicate_pushdown:
            return []
        visible = {table_name.lower()}
        return [
            c.sql() for c in conjuncts
            if (tables := _referenced_tables(c)) is not None
            and tables and tables <= visible
        ]

    base = query.table
    base_predicates = pushed_to(base.effective_name)
    scan = f"Scan {base.sql()} (rows={len(catalog.get(base.name))})"
    if base_predicates:
        scan += f" pushed-filter: {' AND '.join(base_predicates)}"
    lines.append(scan)

    claimed = set(base_predicates)
    for join in query.joins:
        right_predicates = [
            p for p in pushed_to(join.table.effective_name) if p not in claimed
        ]
        claimed |= set(right_predicates)
        if join.kind == "CROSS":
            algorithm = "cross product"
        elif (
            options.hash_joins
            and join.kind == "INNER"
            and _equi_join_key(join.condition) is not None
        ):
            algorithm = "hash join"
        else:
            algorithm = "nested-loop join"
        line = f"{join.kind} {algorithm} with {join.table.sql()}"
        if join.condition is not None:
            line += f" ON {join.condition.sql()}"
        if right_predicates:
            line += f" pushed-filter: {' AND '.join(right_predicates)}"
        lines.append(line)

    residual = [c.sql() for c in conjuncts if c.sql() not in claimed]
    if residual:
        lines.append(f"Filter: {' AND '.join(residual)}")
    if query.group_by or _query_has_aggregates(query):
        keys = ", ".join(e.sql() for e in query.group_by) or "(global)"
        lines.append(f"Aggregate: group by {keys}")
        if query.having is not None:
            lines.append(f"Having: {query.having.sql()}")
    lines.append(
        "Project: " + ", ".join(item.sql() for item in query.items)
    )
    if query.order_by:
        lines.append("Sort: " + ", ".join(o.sql() for o in query.order_by))
    if query.distinct:
        lines.append("Distinct")
    if query.limit is not None:
        lines.append(f"Limit: {query.limit}")
    return lines


# -- scanning and joining --------------------------------------------------
def _scan(catalog: Catalog, ref: TableRef, stats: ExecutionStats) -> List[RowEnv]:
    table = catalog.get(ref.name)
    name = ref.effective_name
    envs: List[RowEnv] = []
    column_names = table.schema.column_names
    for row in table.rows:
        env = RowEnv()
        for column, value in zip(column_names, row):
            env.bind(name, column, value)
        envs.append(env)
    stats.rows_scanned += len(envs)
    return envs


def _indexable_equality(
    conjunct: Expr, ref: TableRef, catalog: Catalog
) -> Optional[Tuple[str, Value]]:
    """Detect ``col = literal`` (either order) over an indexed column."""
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    column_ref: Optional[ColumnRef] = None
    literal: Optional[Literal] = None
    for left, right in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            column_ref, literal = left, right
            break
    if column_ref is None or literal is None or literal.value is None:
        return None
    if column_ref.table is not None and (
        column_ref.table.lower() != ref.effective_name.lower()
    ):
        return None
    table = catalog.get(ref.name)
    if not table.schema.has_column(column_ref.name):
        return None
    if not table.has_index(column_ref.name):
        return None
    return column_ref.name, literal.value


def _index_scan(
    catalog: Catalog,
    ref: TableRef,
    column: str,
    value: Value,
    stats: ExecutionStats,
) -> List[RowEnv]:
    """Bind only the rows the hash index returns for ``column = value``."""
    table = catalog.get(ref.name)
    name = ref.effective_name
    column_names = table.schema.column_names
    envs: List[RowEnv] = []
    # Coerce the literal through the column's type so lookups match
    # stored values (e.g. FLOAT columns probed with integer literals).
    from repro.sql.types import coerce

    probe = coerce(value, table.schema.column(column).sql_type)
    for row_position in table.index_lookup(column, probe):
        row = table.rows[row_position]
        env = RowEnv()
        for column_name, row_value in zip(column_names, row):
            env.bind(name, column_name, row_value)
        envs.append(env)
    stats.index_lookups += 1
    stats.rows_scanned += len(envs)
    return envs


def _join(
    left: List[RowEnv],
    right: List[RowEnv],
    join: JoinClause,
    options: ExecutorOptions,
    stats: ExecutionStats,
    right_columns: List[Tuple[str, str]],
) -> List[RowEnv]:
    if join.kind == "CROSS":
        out = [l.merged_with(r) for l in left for r in right]
        stats.rows_joined += len(out)
        return out

    equi = _equi_join_key(join.condition) if options.hash_joins else None
    if equi is not None and join.kind == "INNER":
        return _hash_join(left, right, join, equi, stats)
    return _nested_loop_join(left, right, join, stats, right_columns)


def _nested_loop_join(
    left: List[RowEnv],
    right: List[RowEnv],
    join: JoinClause,
    stats: ExecutionStats,
    right_columns: List[Tuple[str, str]],
) -> List[RowEnv]:
    out: List[RowEnv] = []
    for left_env in left:
        matched = False
        for right_env in right:
            stats.join_probes += 1
            merged = left_env.merged_with(right_env)
            if evaluate(join.condition, merged) is True:
                out.append(merged)
                matched = True
        if join.kind == "LEFT" and not matched:
            out.append(_pad_left_join(left_env, right_columns))
    stats.rows_joined += len(out)
    return out


def _pad_left_join(
    left_env: RowEnv, right_columns: List[Tuple[str, str]]
) -> RowEnv:
    """Extend a left row with NULLs for every right-side column.

    The column list comes from the right table's *schema*, so the
    padding is correct even when the right side has zero rows.
    """
    padded = RowEnv()
    for (table, column), value in left_env.qualified.items():
        padded.bind(table, column, value)
    for table, column in right_columns:
        padded.bind(table, column, None)
    return padded


def _equi_join_key(condition: Optional[Expr]) -> Optional[Tuple[ColumnRef, ColumnRef]]:
    """Detect ``a.x = b.y`` conditions eligible for hash joins."""
    if (
        isinstance(condition, BinaryOp)
        and condition.op == "="
        and isinstance(condition.left, ColumnRef)
        and isinstance(condition.right, ColumnRef)
    ):
        return condition.left, condition.right
    return None


def _hash_join(
    left: List[RowEnv],
    right: List[RowEnv],
    join: JoinClause,
    equi: Tuple[ColumnRef, ColumnRef],
    stats: ExecutionStats,
) -> List[RowEnv]:
    left_ref, right_ref = equi
    # Figure out which side of the equality belongs to the right input.
    probe_ref, build_ref = left_ref, right_ref
    if right and not _binds(right[0], right_ref):
        probe_ref, build_ref = right_ref, left_ref

    buckets: Dict[Value, List[RowEnv]] = {}
    for env in right:
        key = evaluate(build_ref, env)
        if key is None:
            continue  # NULL never matches in an equi-join
        buckets.setdefault(key, []).append(env)

    out: List[RowEnv] = []
    for env in left:
        key = evaluate(probe_ref, env)
        if key is None:
            continue
        for right_env in buckets.get(key, ()):
            stats.join_probes += 1
            out.append(env.merged_with(right_env))
    stats.rows_joined += len(out)
    return out


def _binds(env: RowEnv, ref: ColumnRef) -> bool:
    try:
        env.lookup(ref.name, ref.table)
        return True
    except SQLAnalysisError:
        return False


# -- WHERE handling --------------------------------------------------------
def _split_conjuncts(where: Optional[Expr]) -> List[Expr]:
    """Flatten a WHERE tree into top-level AND conjuncts."""
    if where is None:
        return []
    if isinstance(where, BinaryOp) and where.op == "AND":
        return _split_conjuncts(where.left) + _split_conjuncts(where.right)
    return [where]


def _apply_single_table_predicates(
    rows: List[RowEnv],
    conjuncts: List[Expr],
    visible_tables: set[str],
    already_pushed: set[int],
) -> Tuple[List[RowEnv], set[int]]:
    """Filter rows by conjuncts whose columns all live in ``visible_tables``."""
    pushed = set(already_pushed)
    for index, conjunct in enumerate(conjuncts):
        if index in pushed:
            continue
        tables = _referenced_tables(conjunct)
        if tables is None or not tables or not tables <= visible_tables:
            continue
        rows = [env for env in rows if evaluate(conjunct, env) is True]
        pushed.add(index)
    return rows, pushed


def _referenced_tables(expr: Expr) -> Optional[set[str]]:
    """Tables referenced by an expression; None if it has bare columns
    (which cannot be attributed without full binding context)."""
    tables: set[str] = set()
    bare = False

    def walk(node: Expr) -> None:
        nonlocal bare
        if isinstance(node, ColumnRef):
            if node.table is None:
                bare = True
            else:
                tables.add(node.table.lower())
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, IsNull):
            walk(node.operand)
        elif isinstance(node, InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, CaseWhen):
            for cond, value in node.branches:
                walk(cond)
                walk(value)
            if node.default is not None:
                walk(node.default)

    walk(expr)
    return None if bare else tables


# -- projection (non-aggregate) ----------------------------------------------
def _execute_plain(
    query: SelectQuery, rows: List[RowEnv]
) -> Tuple[List[str], List[Tuple[Value, ...]]]:
    columns = _output_columns(query, rows)
    result: List[Tuple[Value, ...]] = []
    for env in rows:
        values: List[Value] = []
        for item in query.items:
            if isinstance(item.expr, Star):
                values.extend(_star_values(item.expr, env))
            else:
                values.append(evaluate(item.expr, env))
        result.append(tuple(values))
    return columns, result


def _output_columns(query: SelectQuery, rows: List[RowEnv]) -> List[str]:
    columns: List[str] = []
    for position, item in enumerate(query.items):
        if isinstance(item.expr, Star):
            columns.extend(_star_columns(item.expr, rows))
        else:
            columns.append(item.output_name(position))
    return columns


def _star_columns(star: Star, rows: List[RowEnv]) -> List[str]:
    if not rows:
        return []
    sample = rows[0]
    keys = sorted(sample.qualified.keys()) if star.table is None else [
        key for key in sorted(sample.qualified.keys())
        if key[0] == star.table.lower()
    ]
    if star.table is not None and not keys:
        raise SQLAnalysisError(f"unknown table in {star.table}.*")
    return [column for _, column in keys]


def _star_values(star: Star, env: RowEnv) -> List[Value]:
    keys = sorted(env.qualified.keys())
    if star.table is not None:
        keys = [key for key in keys if key[0] == star.table.lower()]
        if not keys:
            raise SQLAnalysisError(f"unknown table in {star.table}.*")
    return [env.qualified[key] for key in keys]


# -- aggregation ---------------------------------------------------------------
def _query_has_aggregates(query: SelectQuery) -> bool:
    nodes: List[Expr] = [item.expr for item in query.items]
    if query.having is not None:
        nodes.append(query.having)
    nodes.extend(order.expr for order in query.order_by)
    return any(_contains_aggregate(node) for node in nodes)


def _contains_aggregate(expr: Expr) -> bool:
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return True
    children: List[Expr] = []
    if isinstance(expr, BinaryOp):
        children = [expr.left, expr.right]
    elif isinstance(expr, UnaryOp):
        children = [expr.operand]
    elif isinstance(expr, IsNull):
        children = [expr.operand]
    elif isinstance(expr, InList):
        children = [expr.operand, *expr.items]
    elif isinstance(expr, Between):
        children = [expr.operand, expr.low, expr.high]
    elif isinstance(expr, FuncCall):
        children = list(expr.args)
    elif isinstance(expr, CaseWhen):
        children = [c for pair in expr.branches for c in pair]
        if expr.default is not None:
            children.append(expr.default)
    return any(_contains_aggregate(child) for child in children)


def _execute_aggregate(
    query: SelectQuery, rows: List[RowEnv]
) -> Tuple[List[str], List[Tuple[Value, ...]]]:
    # Build groups.
    groups: Dict[Tuple[Value, ...], List[RowEnv]] = {}
    if query.group_by:
        for env in rows:
            key = tuple(evaluate(g, env) for g in query.group_by)
            groups.setdefault(key, []).append(env)
    else:
        groups[()] = rows  # global aggregate; one group even if empty

    columns = [item.output_name(i) for i, item in enumerate(query.items)]
    for item in query.items:
        if isinstance(item.expr, Star):
            raise SQLAnalysisError("'*' cannot appear with aggregation")

    scored: List[Tuple[List[Value], Tuple[Value, ...]]] = []
    for key, group_rows in groups.items():
        representative = group_rows[0] if group_rows else RowEnv()
        if query.having is not None:
            verdict = _eval_aggregate_expr(query.having, group_rows, representative)
            if verdict is not True:
                continue
        projected = tuple(
            _eval_aggregate_expr(item.expr, group_rows, representative)
            for item in query.items
        )
        order_key: List[Value] = []
        for order in query.order_by:
            order_key.append(
                _resolve_order_value(order, query, projected, columns, group_rows, representative)
            )
        scored.append((order_key, projected))

    if query.order_by:
        scored = _sort_scored(scored, query.order_by)
    return columns, [projected for _, projected in scored]


def _resolve_order_value(
    order: OrderItem,
    query: SelectQuery,
    projected: Tuple[Value, ...],
    columns: List[str],
    group_rows: List[RowEnv],
    representative: RowEnv,
) -> Value:
    # ORDER BY may reference a select alias or output column name.
    if isinstance(order.expr, ColumnRef) and order.expr.table is None:
        name = order.expr.name.lower()
        for i, column in enumerate(columns):
            if column.lower() == name:
                return projected[i]
    return _eval_aggregate_expr(order.expr, group_rows, representative)


def _eval_aggregate_expr(
    expr: Expr, group_rows: List[RowEnv], representative: RowEnv
) -> Value:
    """Evaluate an expression tree, computing aggregates over the group."""
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return _compute_aggregate(expr, group_rows)
    if isinstance(expr, (Literal,)):
        return expr.value
    if isinstance(expr, ColumnRef):
        # Non-aggregated column: per SQL it must be a group key; we take
        # the representative row's value (group members agree on keys).
        return evaluate(expr, representative)
    if isinstance(expr, BinaryOp):
        rebuilt = BinaryOp(
            op=expr.op,
            left=Literal(_eval_aggregate_expr(expr.left, group_rows, representative)),
            right=Literal(_eval_aggregate_expr(expr.right, group_rows, representative)),
        )
        return evaluate(rebuilt, representative)
    if isinstance(expr, UnaryOp):
        rebuilt = UnaryOp(
            op=expr.op,
            operand=Literal(_eval_aggregate_expr(expr.operand, group_rows, representative)),
        )
        return evaluate(rebuilt, representative)
    if isinstance(expr, IsNull):
        value = _eval_aggregate_expr(expr.operand, group_rows, representative)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, FuncCall):
        rebuilt = FuncCall(
            name=expr.name,
            args=tuple(
                Literal(_eval_aggregate_expr(a, group_rows, representative))
                for a in expr.args
            ),
        )
        return evaluate(rebuilt, representative)
    if isinstance(expr, CaseWhen):
        for condition, result in expr.branches:
            if _eval_aggregate_expr(condition, group_rows, representative) is True:
                return _eval_aggregate_expr(result, group_rows, representative)
        if expr.default is not None:
            return _eval_aggregate_expr(expr.default, group_rows, representative)
        return None
    return evaluate(expr, representative)


def _compute_aggregate(call: FuncCall, group_rows: List[RowEnv]) -> Value:
    name = call.name.upper()
    if name == "COUNT" and len(call.args) == 1 and isinstance(call.args[0], Star):
        return len(group_rows)
    if len(call.args) != 1:
        raise SQLAnalysisError(f"{name} takes exactly one argument")
    values = [evaluate(call.args[0], env) for env in group_rows]
    values = [v for v in values if v is not None]
    if call.distinct:
        seen: List[Value] = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen
    if name == "COUNT":
        return len(values)
    if not values:
        return None  # SUM/AVG/MIN/MAX of an empty set is NULL
    if name == "SUM":
        return sum(_coerce_num(v) for v in values)
    if name == "AVG":
        return sum(_coerce_num(v) for v in values) / len(values)
    if name == "MIN":
        return min(values)  # type: ignore[type-var]
    if name == "MAX":
        return max(values)  # type: ignore[type-var]
    raise SQLAnalysisError(f"unknown aggregate {name}")


def _coerce_num(value: Value) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return value  # type: ignore[return-value]
    raise SQLExecutionError(f"aggregate over non-numeric value {value!r}")


# -- ordering / distinct -------------------------------------------------------
def _sort_key(value: Value) -> Tuple[int, object]:
    """Total order over heterogeneous SQL values (NULLs last)."""
    if value is None:
        return (2, 0)
    if isinstance(value, bool):
        return (0, float(value))
    if isinstance(value, (int, float)):
        return (0, float(value))
    return (1, str(value))


def _sort_scored(
    scored: List[Tuple[List[Value], Tuple[Value, ...]]],
    order_by: Sequence[OrderItem],
) -> List[Tuple[List[Value], Tuple[Value, ...]]]:
    # Stable multi-key sort: apply keys right-to-left. For each key,
    # sort by value (honouring direction), then push NULLs to the end
    # with a second stable pass.
    out = list(scored)
    for index in range(len(order_by) - 1, -1, -1):
        descending = order_by[index].descending
        out.sort(key=lambda pair: _sort_key(pair[0][index]), reverse=descending)
        out.sort(key=lambda pair: pair[0][index] is None)
    return out


def _order_plain(
    query: SelectQuery,
    rows: List[RowEnv],
    result: List[Tuple[Value, ...]],
    columns: List[str],
) -> List[Tuple[Value, ...]]:
    # Compute order keys per source row (aliases resolve to outputs).
    keyed: List[Tuple[List[Value], Tuple[Value, ...]]] = []
    lower_columns = [c.lower() for c in columns]
    for env, projected in zip(rows, result):
        key: List[Value] = []
        for order in query.order_by:
            value: Value
            if isinstance(order.expr, ColumnRef) and order.expr.table is None and (
                order.expr.name.lower() in lower_columns
            ):
                value = projected[lower_columns.index(order.expr.name.lower())]
            else:
                value = evaluate(order.expr, env)
            key.append(value)
        keyed.append((key, projected))
    keyed = _sort_scored(keyed, query.order_by)
    return [projected for _, projected in keyed]


def _distinct(rows: List[Tuple[Value, ...]]) -> List[Tuple[Value, ...]]:
    seen: set = set()
    out: List[Tuple[Value, ...]] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out
