"""One shard: a replicated pair of durable databases plus failover.

On disk a shard is a directory with two durable-database homes and a
role marker naming which one currently holds the primary::

    shard0/
      role.json        {"primary": "a", "epoch": 3}   (atomic writes)
      a/               wal.log + snapshot.json
      b/               wal.log + snapshot.json

Writes are **synchronously replicated**: a statement is acknowledged
only after (1) the primary's commit record is fsynced and (2) every
resulting WAL frame has been shipped to and fsynced by the replica.
Acknowledged therefore implies *present on both sides*, which makes
promotion safe: whichever home ``role.json`` points at — before or
after a crashed failover — contains every acknowledged write.

Crash classification is by catch-site: any
:class:`~repro.errors.SimulatedCrash` escaping a primary operation
(execute, commit, ship, apply) means the shard's primary process died
and surfaces as :class:`ShardCrashed` so the coordinator can decide
between failover (promote the replica) and degraded mode (typed
:class:`~repro.errors.ShardUnavailableError` on writes, stale-labeled
replica reads). Crashes inside :meth:`Shard.promote` itself propagate
raw — the coordinator is dying too, and recovery happens at reopen.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.durability.crash import CrashInjector, reach
from repro.durability.database import DurableDatabase, dump_database
from repro.durability.io import atomic_write_text
from repro.errors import (
    ClusterError,
    ShardUnavailableError,
    SimulatedCrash,
    WALCorruptionError,
)
from repro.sql.cluster.replicate import ShardReplica, ShardReplicator
from repro.sql.engine import QueryResult

ROLE_NAME = "role.json"
HOMES = ("a", "b")


class ShardCrashed(ClusterError):
    """A shard's primary died mid-operation (simulated crash).

    Control-flow marker between :class:`Shard` and the coordinator:
    carries the shard id and the original
    :class:`~repro.errors.SimulatedCrash` so a coordinator without
    failover can re-raise the raw crash (whole-process death) while one
    with failover promotes the replica instead.
    """

    def __init__(self, shard: int, cause: SimulatedCrash) -> None:
        super().__init__(
            f"shard {shard} primary crashed: {cause}"
        )
        self.shard = int(shard)
        self.cause = cause


class Shard:
    """A primary :class:`DurableDatabase` with a log-shipped replica."""

    def __init__(
        self,
        directory: Union[str, Path],
        shard_id: int = 0,
        crash: Optional[CrashInjector] = None,
        durable: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shard_id = int(shard_id)
        self.crash = crash
        self.durable = durable
        self.dead = False
        role = self._read_role()
        self.epoch = int(role["epoch"])
        self.primary_home: str = role["primary"]
        self._open_pair()

    # -- role marker -------------------------------------------------------
    @property
    def role_path(self) -> Path:
        return self.directory / ROLE_NAME

    def _read_role(self) -> Dict:
        if not self.role_path.exists():
            self._write_role(HOMES[0], 1)
            return {"primary": HOMES[0], "epoch": 1}
        role = json.loads(self.role_path.read_text(encoding="utf-8"))
        if role.get("primary") not in HOMES:
            raise ClusterError(
                f"shard {self.shard_id} role marker names unknown home "
                f"{role.get('primary')!r}"
            )
        return role

    def _write_role(self, primary: str, epoch: int) -> None:
        atomic_write_text(
            self.role_path,
            json.dumps({"primary": primary, "epoch": epoch}, sort_keys=True),
            crash=self.crash,
            label="role",
            durable=self.durable,
        )

    @property
    def replica_home(self) -> str:
        return HOMES[1] if self.primary_home == HOMES[0] else HOMES[0]

    # -- open / recovery ---------------------------------------------------
    def _open_pair(self) -> None:
        self.primary = DurableDatabase(
            self.directory / self.primary_home,
            crash=self.crash,
            durable=self.durable,
        )
        replica_dir = self.directory / self.replica_home
        try:
            self.replica = ShardReplica(
                replica_dir, crash=self.crash, durable=self.durable
            )
        except WALCorruptionError:
            # A fuzzer (or a crashed failover) left the replica home
            # unreadable; it holds no acknowledged state the primary
            # lacks, so rebuild it from scratch.
            shutil.rmtree(replica_dir, ignore_errors=True)
            self.replica = ShardReplica(
                replica_dir, crash=self.crash, durable=self.durable
            )
        self.replicator = ShardReplicator(
            self.primary, self.replica, crash=self.crash
        )
        # A replica ahead of its primary is on a divergent timeline (a
        # failover crashed between the role flip and the reseed of the
        # demoted home): its extra frames were never acknowledged.
        diverged = self.replica.watermark > self.primary.wal.last_lsn
        if diverged or not self.replicator.resync():
            self._reseed_replica()
        else:
            self.replicator.ship()  # catch up frames committed pre-crash

    def _reseed_replica(self) -> None:
        body = dump_database(self.primary.db)
        if self.primary.applied_tags:
            body["tags"] = sorted(self.primary.applied_tags)
        self.replica.reseed(body, self.primary.wal.last_lsn)
        self.replicator.resync()
        self.replicator.stats.reseeds += 1

    # -- the write path ----------------------------------------------------
    def _primary_op(self, fn):
        if self.dead:
            raise ShardUnavailableError(
                f"shard {self.shard_id} has no live primary",
                shard=self.shard_id,
            )
        try:
            return fn()
        except SimulatedCrash as exc:
            self.dead = True
            raise ShardCrashed(self.shard_id, exc) from exc

    def execute(self, sql: str, tag: Optional[str] = None) -> QueryResult:
        """Run one statement; mutations are acknowledged only once the
        commit is durable on the primary *and* shipped to the replica."""
        result = self._primary_op(lambda: self.primary.execute(sql, tag=tag))
        if not self.primary.in_transaction:
            self._primary_op(self.replicator.ship)
        return result

    def put_table(self, table, replace: bool = False, tag: Optional[str] = None) -> None:
        """Durably register a pre-built table partition (bulk seeding)."""
        self._primary_op(
            lambda: self.primary.put_table(table, replace=replace, tag=tag)
        )
        if not self.primary.in_transaction:
            self._primary_op(self.replicator.ship)

    def begin(self) -> None:
        self._primary_op(self.primary.begin)

    def commit(self) -> None:
        self._primary_op(self.primary.commit)
        self._primary_op(self.replicator.ship)

    def rollback(self) -> None:
        self._primary_op(self.primary.rollback)
        self._primary_op(self.replicator.ship)

    @property
    def in_transaction(self) -> bool:
        return self.primary.in_transaction

    def has_applied(self, tag: str) -> bool:
        """True if ``tag``'s statement is durably committed here.

        After a promotion this answers from the new primary's replayed
        log, which is what makes coordinator re-routing exactly-once.
        """
        return self.primary.has_applied(tag)

    def compact(self) -> None:
        """Compact the primary, then reseed the replica.

        Compaction resets the primary WAL, so byte-offset shipping can
        no longer describe the gap; the replica restarts from a full
        snapshot at the same LSN.
        """
        self._primary_op(self.replicator.ship)
        self._primary_op(self.primary.compact)
        self._primary_op(self._reseed_replica)

    # -- reads -------------------------------------------------------------
    def query(self, sql: str) -> QueryResult:
        """A read against the primary (fresh, fails when it is dead)."""
        return self._primary_op(lambda: self.primary.execute(sql))

    def stale_query(self, sql: str) -> QueryResult:
        """A read against the replica's committed state (may trail)."""
        return self.replica.query(sql)

    def replication_lag(self) -> int:
        return self.replicator.lag()

    # -- failover ----------------------------------------------------------
    def kill(self) -> None:
        """Declare the primary dead (external failure detection)."""
        self.dead = True

    def promote(self) -> None:
        """Fail over: the replica home becomes the primary.

        Steps, in crash-safe order: replay the replica's WAL into a
        fresh :class:`DurableDatabase` (the replica home is kept in
        that on-disk format for exactly this moment), fold it into a
        snapshot, atomically flip ``role.json`` (the commit point of
        the failover), then wipe and reseed the demoted home as the new
        replica. A crash anywhere in between leaves ``role.json``
        naming a home that contains every acknowledged write.
        """
        if not self.dead:
            raise ClusterError(
                f"shard {self.shard_id} primary is alive; refusing to promote"
            )
        old_home, new_home = self.primary_home, self.replica_home
        self.primary.close()
        self.replica.close()
        reach(self.crash, "promote-before-replay")
        promoted = DurableDatabase(
            self.directory / new_home,
            crash=self.crash,
            durable=self.durable,
        )
        reach(self.crash, "promote-after-replay")
        promoted.compact()
        self.epoch += 1
        self._write_role(new_home, self.epoch)
        self.primary_home = new_home
        self.primary = promoted
        reach(self.crash, "promote-before-reseed")
        shutil.rmtree(self.directory / old_home, ignore_errors=True)
        self.replica = ShardReplica(
            self.directory / old_home, crash=self.crash, durable=self.durable
        )
        self.replicator = ShardReplicator(
            self.primary, self.replica, crash=self.crash
        )
        self._reseed_replica()
        self.dead = False

    # -- introspection -----------------------------------------------------
    def table_names(self) -> List[str]:
        return self.primary.table_names()

    def state(self) -> Dict:
        return self.primary.state()

    def close(self) -> None:
        self.primary.close()
        self.replica.close()
