"""Primary→replica WAL shipping with acks and receive-side vetting.

One :class:`ShardReplicator` connects a primary
:class:`~repro.durability.DurableDatabase` to a :class:`ShardReplica`.
Shipping is *synchronous and batched*: after the primary fsyncs a
commit, every WAL frame not yet shipped goes to the replica in one
chunk, the replica persists the frames to its own WAL and fsyncs, and
only then is the statement acknowledged to the caller. Acknowledged
therefore always implies *replicated* — the invariant failover leans
on when it promotes the replica after a primary death.

The receive path trusts nothing. Each chunk is re-scanned with the
same CRC framing reader the primary uses
(:func:`repro.durability.wal.scan_wal_bytes`) and classified:

* **torn tail** — the chunk ends mid-frame (the network analogue of a
  torn write). The partial bytes are buffered until the rest arrives;
  nothing is applied.
* **corruption** — a fully framed record fails its CRC or decoding.
  The frame is *never* applied; the buffer is dropped so the primary
  can re-ship from the replica's acknowledged LSN.
* **duplicate** — a frame at or below the replica's LSN watermark is
  skipped (LSN-idempotent receive: re-shipping after a lost ack can
  never double-apply).
* **reorder** — a frame that skips past ``watermark + 1`` is rejected;
  the shipping protocol is strictly ordered.

The replica's directory is kept in :class:`DurableDatabase` on-disk
format (``wal.log`` + ``snapshot.json``), so promotion is nothing more
than ``DurableDatabase.open(replica_dir)``.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.durability.crash import CrashInjector, reach
from repro.durability.database import (
    DurableDatabase,
    read_snapshot,
    restore_database,
)
from repro.durability.wal import WriteAheadLog, encode_record, scan_wal_bytes
from repro.errors import ReplicationError, WALCorruptionError
from repro.sql.engine import Database

#: receive statuses, from benign to fatal
RECEIVE_OK = "ok"
RECEIVE_TORN = "torn-tail"
RECEIVE_REORDER = "reorder"
RECEIVE_CORRUPT = "corruption"


@dataclass
class ReceiveResult:
    """What one shipped chunk did to the replica."""

    status: str = RECEIVE_OK
    applied: int = 0
    duplicates: int = 0
    #: replica's durable LSN watermark after processing (the ack)
    acked_lsn: int = 0
    error: str = ""


@dataclass
class ReplicationStats:
    """Lifetime counters of one primary→replica link."""

    ships: int = 0
    shipped_bytes: int = 0
    shipped_records: int = 0
    duplicates_skipped: int = 0
    torn_chunks: int = 0
    corrupt_rejected: int = 0
    reorder_rejected: int = 0
    #: records the replica trailed the primary by, sampled at ship time
    lag_records: int = 0
    max_lag_records: int = 0
    reseeds: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "ships": self.ships,
            "shipped_bytes": self.shipped_bytes,
            "shipped_records": self.shipped_records,
            "duplicates_skipped": self.duplicates_skipped,
            "torn_chunks": self.torn_chunks,
            "corrupt_rejected": self.corrupt_rejected,
            "reorder_rejected": self.reorder_rejected,
            "max_lag_records": self.max_lag_records,
            "reseeds": self.reseeds,
        }


class ShardReplica:
    """The receiving end: a warm standby built from shipped WAL frames.

    Maintains an in-memory :class:`~repro.sql.Database` of *committed*
    shipped transactions (serving stale-labeled reads during failover)
    plus the pending statements of transactions whose commit frame has
    not arrived yet. On disk it is a regular durable-database directory.
    """

    SNAPSHOT_NAME = DurableDatabase.SNAPSHOT_NAME
    WAL_NAME = DurableDatabase.WAL_NAME

    def __init__(
        self,
        directory: Union[str, Path],
        crash: Optional[CrashInjector] = None,
        durable: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.crash = crash
        self.durable = durable
        self.db = Database()
        #: txn id -> statement records shipped but not yet committed
        self.pending: Dict[int, List[Dict]] = {}
        self.applied_tags: set = set()
        #: highest LSN durably persisted (the ack the primary waits on)
        self.watermark = 0
        self._tail = b""
        self._load()

    @property
    def snapshot_path(self) -> Path:
        return self.directory / self.SNAPSHOT_NAME

    @property
    def wal_path(self) -> Path:
        return self.directory / self.WAL_NAME

    def _load(self) -> None:
        snapshot_lsn = 0
        data, snapshot_lsn = read_snapshot(self.snapshot_path)
        if data is not None:
            restore_database(data, self.db)
            self.applied_tags.update(data.get("tags", ()))
        raw = self.wal_path.read_bytes() if self.wal_path.exists() else b""
        scan = scan_wal_bytes(raw)
        if scan.error is not None:
            raise WALCorruptionError(
                f"replica log {self.wal_path} is corrupt: {scan.error}"
            )
        for record in scan.records:
            if record.get("lsn", 0) <= snapshot_lsn:
                continue
            self._track(record)
        self.watermark = max(snapshot_lsn, scan.last_lsn)
        self.wal = WriteAheadLog(
            self.wal_path,
            crash=self.crash,
            durable=self.durable,
            next_lsn=self.watermark + 1,
        )
        if scan.torn_bytes:
            self.wal.truncate_to(scan.valid_bytes)

    def _track(self, record: Dict) -> None:
        """Streaming equivalent of replay: apply at commit, buffer else."""
        kind = record.get("t")
        txn = int(record.get("txn", 0))
        if kind == "begin":
            self.pending.setdefault(txn, [])
        elif kind in ("stmt", "table"):
            self.pending.setdefault(txn, []).append(record)
        elif kind == "abort":
            self.pending.pop(txn, None)
        elif kind == "commit":
            for statement in self.pending.pop(txn, []):
                DurableDatabase._apply_record(self.db, statement)
                if statement.get("tag"):
                    self.applied_tags.add(statement["tag"])
        else:
            raise ReplicationError(
                f"unknown shipped record type {kind!r} "
                f"(lsn {record.get('lsn')})"
            )

    def receive(self, chunk: bytes) -> ReceiveResult:
        """Ingest one shipped chunk; classify, persist, apply, ack."""
        data = self._tail + chunk
        scan = scan_wal_bytes(data)
        result = ReceiveResult(acked_lsn=self.watermark)
        appended = False
        for record in scan.records:
            lsn = int(record.get("lsn", 0))
            if lsn <= self.watermark:
                result.duplicates += 1
                continue
            if lsn != self.watermark + 1:
                result.status = RECEIVE_REORDER
                result.error = (
                    f"frame lsn {lsn} arrived with watermark "
                    f"{self.watermark} (strictly ordered shipping)"
                )
                break
            self.wal.append_raw(encode_record(record), lsn, sync=False)
            appended = True
            self._track(record)
            self.watermark = lsn
            result.applied += 1
        if appended:
            # One fsync per shipped batch: the ack's durability barrier.
            self.wal.sync()
        result.acked_lsn = self.watermark
        if result.status == RECEIVE_REORDER:
            self._tail = b""
            return result
        if scan.error is not None:
            result.status = RECEIVE_CORRUPT
            result.error = scan.error
            self._tail = b""
            return result
        self._tail = data[scan.valid_bytes :]
        if self._tail:
            result.status = RECEIVE_TORN
        return result

    def reseed(self, body_dict: Dict, last_lsn: int) -> None:
        """Rebuild this replica from a full snapshot of the primary.

        Used after the primary compacts (its WAL resets, so frame
        shipping can no longer describe the gap) and to re-establish
        redundancy after a failover promoted the old replica.
        """
        from repro.durability.database import write_snapshot

        write_snapshot(
            self.snapshot_path,
            body_dict,
            last_lsn,
            crash=self.crash,
            label="reseed",
            durable=self.durable,
        )
        self.wal.reset()
        self.wal.last_lsn = int(last_lsn)
        self.db = Database()
        restore_database(body_dict, self.db)
        self.applied_tags = set(body_dict.get("tags", ()))
        self.pending = {}
        self.watermark = int(last_lsn)
        self._tail = b""

    def query(self, sql: str):
        """Run a read against the replica's committed state."""
        return self.db.execute(sql)

    def state(self) -> Dict:
        from repro.durability.database import dump_database

        return dump_database(self.db)

    def close(self) -> None:
        self.wal.close()

    def destroy(self) -> None:
        """Delete the replica's directory (it is being rebuilt)."""
        self.wal.close()
        shutil.rmtree(self.directory, ignore_errors=True)


class ShardReplicator:
    """The sending end: ships new primary WAL frames and tracks lag."""

    def __init__(
        self,
        primary: DurableDatabase,
        replica: ShardReplica,
        crash: Optional[CrashInjector] = None,
    ) -> None:
        self.primary = primary
        self.replica = replica
        self.crash = crash
        #: byte offset into the primary WAL already shipped
        self.shipped_bytes = 0
        self.stats = ReplicationStats()

    def lag(self) -> int:
        """Records the replica currently trails the primary by."""
        return max(0, self.primary.wal.last_lsn - self.replica.watermark)

    def _observe_lag(self) -> None:
        self.stats.lag_records = self.lag()
        self.stats.max_lag_records = max(
            self.stats.max_lag_records, self.stats.lag_records
        )

    def ship(self) -> int:
        """Ship every unshipped whole frame; returns frames applied.

        The chunk is delivered in two halves with a crash point between
        them, modelling a send the process died in the middle of — the
        replica must classify the torn half and stay consistent.
        """
        self._observe_lag()
        raw = (
            self.primary.wal_path.read_bytes()
            if self.primary.wal_path.exists()
            else b""
        )
        pending = raw[self.shipped_bytes :]
        scan = scan_wal_bytes(pending)
        chunk = pending[: scan.valid_bytes]
        if not chunk:
            return 0
        reach(self.crash, "ship-before-send")
        half = len(chunk) // 2
        first = self.replica.receive(chunk[:half])
        reach(self.crash, "ship-torn-send")
        second = self.replica.receive(chunk[half:])
        reach(self.crash, "ship-after-send")
        self.shipped_bytes += len(chunk)
        self.stats.ships += 1
        self.stats.shipped_bytes += len(chunk)
        applied = first.applied + second.applied
        self.stats.shipped_records += applied
        self.stats.duplicates_skipped += first.duplicates + second.duplicates
        for result in (first, second):
            if result.status == RECEIVE_TORN:
                self.stats.torn_chunks += 1
            elif result.status == RECEIVE_CORRUPT:
                self.stats.corrupt_rejected += 1
                raise ReplicationError(
                    f"replica rejected shipped frames as corrupt: "
                    f"{result.error}"
                )
            elif result.status == RECEIVE_REORDER:
                self.stats.reorder_rejected += 1
                raise ReplicationError(
                    f"replica rejected shipped frames as reordered: "
                    f"{result.error}"
                )
        self._observe_lag()
        return applied

    def resync(self) -> bool:
        """Recompute the shipped-byte offset from the replica's ack.

        After a reopen the in-memory offset is gone; walk the primary
        WAL until the replica's watermark and continue from there.
        Returns False when the replica is behind the start of the
        primary WAL (the primary compacted past it) — the caller must
        reseed instead of ship.
        """
        raw = (
            self.primary.wal_path.read_bytes()
            if self.primary.wal_path.exists()
            else b""
        )
        scan = scan_wal_bytes(raw)
        offset = 0
        watermark = self.replica.watermark
        first_lsn = (
            int(scan.records[0].get("lsn", 0)) if scan.records else None
        )
        if first_lsn is not None and watermark < first_lsn - 1:
            return False
        for record in scan.records:
            lsn = int(record.get("lsn", 0))
            if lsn > watermark:
                break
            offset += len(encode_record(record))
        self.shipped_bytes = offset
        return True
