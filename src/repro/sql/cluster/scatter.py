"""Distributed SELECT planning: scatter, partial aggregation, gather.

Given one parsed :class:`~repro.sql.ast.SelectQuery` and the cluster's
:class:`~repro.sql.cluster.partition.PartitionMap`, :func:`plan_select`
picks the cheapest strategy that is provably row-equivalent to running
the query on a single node holding all the data:

* **single-shard** — the WHERE clause pins the partition key to a
  literal, so every qualifying row lives on one shard; the query runs
  there verbatim.
* **scatter** — a non-aggregate query over one table (or tables joined
  on their co-partitioned keys, so every join match is shard-local).
  Each shard runs the query with ORDER BY/LIMIT/DISTINCT stripped and
  auxiliary ``__ok{i}`` sort-key columns appended; the coordinator
  concatenates, sorts with the executor's own comparator, deduplicates,
  and applies the limit.
* **partial-aggregate** — two-phase aggregation: each shard groups
  locally and emits partial states (``COUNT``/``SUM`` → ``SUM``,
  ``MIN``/``MAX`` → themselves, ``AVG`` → a SUM+COUNT pair); the
  coordinator loads the partials into a scratch ``__partials`` table
  and runs a rewritten merge query (HAVING/ORDER BY rewritten over the
  partial columns) through the ordinary executor.
* **gather** — the always-correct fallback: ship every table to the
  coordinator and run the original query unchanged on the union.
  Chosen whenever a construct's distributed form is not provably
  equivalent (subqueries, non-co-partitioned joins, DISTINCT
  aggregates, LIMIT without ORDER BY, non-column grouping, ...); the
  plan records the reason for observability.

The planner rewrites ASTs directly — no SQL re-parsing — so shard and
merge queries execute through :func:`repro.sql.executor.execute_select`
exactly as a single node would.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InSubquery,
    Literal,
    OrderItem,
    SelectItem,
    SelectQuery,
    Star,
    Subquery,
    TableRef,
    walk_expr,
)
from repro.sql.catalog import Catalog
from repro.sql.cluster.partition import PartitionMap
from repro.sql.executor import (
    _distinct,
    _query_has_aggregates,
    _sort_scored,
    _split_conjuncts,
)
from repro.sql.schema import Column, TableSchema
from repro.sql.types import SQLType, Value, infer_type

SINGLE_SHARD = "single-shard"
SCATTER = "scatter"
PARTIAL_AGG = "partial-aggregate"
GATHER = "gather"

#: name of the coordinator-side scratch table holding partial states
PARTIAL_TABLE = "__partials"


@dataclass
class DistributedPlan:
    """How one SELECT runs across the shards, and how results merge."""

    strategy: str
    #: why the planner fell back to gather (empty for other strategies)
    reason: str = ""
    target_shard: Optional[int] = None
    shard_query: Optional[SelectQuery] = None
    merge_query: Optional[SelectQuery] = None
    partial_schema: Optional[TableSchema] = None
    #: ORDER BY key sources for scatter merge: ("aux", i) reads the
    #: i-th appended ``__ok`` column, ("name", c) an output column
    order_keys: List[Tuple[str, object]] = field(default_factory=list)
    #: count of auxiliary sort-key columns appended to the shard query
    n_aux: int = 0


class _Gather(Exception):
    """Internal: abandon the fast path and fall back to gather."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def plan_select(
    query: SelectQuery, pmap: PartitionMap, catalog: Catalog
) -> DistributedPlan:
    """Choose a distributed strategy for one SELECT."""
    try:
        return _plan(query, pmap, catalog)
    except _Gather as fallback:
        return DistributedPlan(GATHER, reason=fallback.reason)


def _plan(
    query: SelectQuery, pmap: PartitionMap, catalog: Catalog
) -> DistributedPlan:
    if _has_subquery(query):
        raise _Gather("contains a subquery")
    for ref in _table_refs(query):
        if not pmap.is_registered(ref.name):
            raise _Gather(f"table {ref.name!r} is not partitioned")
    if query.joins:
        _require_local_joins(query, pmap)
    if not query.joins:
        pruned = partition_key_equality(
            query.where, query.table.name, query.table.effective_name, pmap
        )
        if pruned is not None:
            value = pruned[0]
            return DistributedPlan(
                SINGLE_SHARD,
                target_shard=pmap.shard_of(query.table.name, value),
                shard_query=query,
            )
    if query.group_by or _query_has_aggregates(query):
        return _plan_partial_aggregate(query, pmap, catalog)
    if query.having is not None:
        raise _Gather("HAVING without aggregation")
    if query.limit is not None and not query.order_by:
        raise _Gather("LIMIT without ORDER BY is scan-order-dependent")
    return _plan_scatter(query, catalog)


def _table_refs(query: SelectQuery) -> List[TableRef]:
    return [query.table, *(join.table for join in query.joins)]


def _has_subquery(query: SelectQuery) -> bool:
    exprs: List[Expr] = [item.expr for item in query.items]
    if query.where is not None:
        exprs.append(query.where)
    if query.having is not None:
        exprs.append(query.having)
    exprs.extend(order.expr for order in query.order_by)
    exprs.extend(query.group_by)
    return any(
        isinstance(node, (Subquery, InSubquery))
        for expr in exprs
        for node in walk_expr(expr)
    )


# -- pruning ---------------------------------------------------------------
def partition_key_equality(
    where: Optional[Expr],
    table_name: str,
    effective_name: str,
    pmap: PartitionMap,
) -> Optional[Tuple[Value]]:
    """The literal the partition key is pinned to, if WHERE pins it.

    Returns a one-tuple holding the key value of a ``key = literal``
    conjunct (either operand order) — tupled so a pinned NULL is
    distinguishable from "not pinned" — or ``None`` when the statement
    cannot be pruned. A literal NULL still routes (to shard 0):
    ``= NULL`` matches nothing on any shard, so running it on one is as
    correct as running it on all. Shared by SELECT planning and the
    coordinator's single-shard UPDATE/DELETE routing.
    """
    key_column = pmap.key_column(table_name).lower()
    base = effective_name.lower()
    for conjunct in _split_conjuncts(where):
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            continue
        sides = (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        )
        for column, literal in sides:
            if not (
                isinstance(column, ColumnRef) and isinstance(literal, Literal)
            ):
                continue
            if column.table is not None and column.table.lower() != base:
                continue
            if column.name.lower() == key_column:
                return (literal.value,)
    return None


# -- join locality ---------------------------------------------------------
def _require_local_joins(query: SelectQuery, pmap: PartitionMap) -> None:
    """Verify every join matches rows only within one shard.

    A join is shard-local when it is an equi-join whose two sides are
    the partition keys of the joined tables (co-partitioning: equal
    keys hash to the same shard). Anything else — CROSS joins,
    non-equality conditions, joins on non-key columns — may need rows
    from two different shards and forces a gather.
    """
    local: Dict[str, str] = {
        query.table.effective_name.lower(): query.table.name
    }
    for join in query.joins:
        if join.kind == "CROSS" or join.condition is None:
            raise _Gather("CROSS JOIN is never shard-local")
        condition = join.condition
        if not (
            isinstance(condition, BinaryOp)
            and condition.op == "="
            and isinstance(condition.left, ColumnRef)
            and isinstance(condition.right, ColumnRef)
            and condition.left.table is not None
            and condition.right.table is not None
        ):
            raise _Gather(
                f"join condition {condition.sql()} is not a qualified "
                "equi-join"
            )
        joined = join.table.effective_name.lower()
        sides: Dict[str, ColumnRef] = {}
        for ref in (condition.left, condition.right):
            alias = ref.table.lower()
            if alias == joined:
                sides["new"] = ref
            elif alias in local:
                sides["old"] = ref
        if "new" not in sides or "old" not in sides:
            raise _Gather(
                f"join condition {condition.sql()} does not connect "
                f"{join.table.sql()} to an earlier table"
            )
        new_table = join.table.name
        old_table = local[sides["old"].table.lower()]
        if (
            sides["new"].name.lower() != pmap.key_column(new_table).lower()
            or sides["old"].name.lower() != pmap.key_column(old_table).lower()
        ):
            raise _Gather(
                f"join condition {condition.sql()} is not on the "
                "partition keys (tables are not co-partitioned)"
            )
        local[joined] = new_table


# -- plain scatter ---------------------------------------------------------
def _static_output_names(query: SelectQuery, catalog: Catalog) -> List[str]:
    """Output column names, with ``*`` expanded from the schemas.

    Mirrors the executor's star expansion (sorted by qualified name) so
    alias resolution in ORDER BY agrees with a single-node run.
    """
    names: List[str] = []
    for position, item in enumerate(query.items):
        if isinstance(item.expr, Star):
            keys: List[Tuple[str, str]] = []
            for ref in _table_refs(query):
                effective = ref.effective_name.lower()
                if (
                    item.expr.table is not None
                    and item.expr.table.lower() != effective
                ):
                    continue
                keys.extend(
                    (effective, column.lower())
                    for column in catalog.get(ref.name).schema.column_names
                )
            keys.sort()
            names.extend(column for _, column in keys)
        else:
            names.append(item.output_name(position))
    return names


def _plan_scatter(query: SelectQuery, catalog: Catalog) -> DistributedPlan:
    output_names = {name.lower() for name in _static_output_names(query, catalog)}
    aux_items: List[SelectItem] = []
    order_keys: List[Tuple[str, object]] = []
    for order in query.order_by:
        expr = order.expr
        if (
            isinstance(expr, ColumnRef)
            and expr.table is None
            and expr.name.lower() in output_names
        ):
            # ORDER BY an output column/alias: its value is already in
            # every shard row; no auxiliary column needed.
            order_keys.append(("name", expr.name.lower()))
        else:
            order_keys.append(("aux", len(aux_items)))
            aux_items.append(
                SelectItem(expr=expr, alias=f"__ok{len(aux_items)}")
            )
    shard_query = dataclasses.replace(
        query,
        items=tuple(query.items) + tuple(aux_items),
        order_by=(),
        limit=None,
        distinct=False,
    )
    return DistributedPlan(
        SCATTER,
        shard_query=shard_query,
        order_keys=order_keys,
        n_aux=len(aux_items),
    )


def merge_scatter(
    plan: DistributedPlan,
    query: SelectQuery,
    results: List[Tuple[List[str], List[Tuple[Value, ...]]]],
) -> Tuple[List[str], List[Tuple[Value, ...]]]:
    """Concatenate shard results; sort, deduplicate, and limit globally."""
    keyed: List[Tuple[List[Value], Tuple[Value, ...]]] = []
    columns: List[str] = []
    for shard_columns, shard_rows in results:
        if shard_columns and not columns:
            columns = shard_columns
        lowered = [c.lower() for c in shard_columns]
        width = len(shard_columns) - plan.n_aux
        for row in shard_rows:
            projected = row[:width] if plan.n_aux else row
            key: List[Value] = []
            for kind, selector in plan.order_keys:
                if kind == "aux":
                    key.append(row[width + int(selector)])
                else:
                    key.append(projected[lowered.index(str(selector))])
            keyed.append((key, projected))
    if query.order_by:
        keyed = _sort_scored(keyed, query.order_by)
    merged = [projected for _, projected in keyed]
    if query.distinct:
        merged = _distinct(merged)
    if query.limit is not None:
        merged = merged[: query.limit]
    return columns[: len(columns) - plan.n_aux] if plan.n_aux else columns, merged


# -- two-phase aggregation -------------------------------------------------
def _plan_partial_aggregate(
    query: SelectQuery, pmap: PartitionMap, catalog: Catalog
) -> DistributedPlan:
    if query.distinct:
        raise _Gather("SELECT DISTINCT with aggregation")

    schemas = {
        ref.effective_name.lower(): catalog.get(ref.name).schema
        for ref in _table_refs(query)
    }

    def column_type(ref: ColumnRef) -> SQLType:
        if ref.table is not None:
            schema = schemas.get(ref.table.lower())
            if schema is None or not schema.has_column(ref.name):
                raise _Gather(f"cannot type column {ref.sql()}")
            return schema.column(ref.name).sql_type
        found = [
            s.column(ref.name).sql_type
            for s in schemas.values()
            if s.has_column(ref.name)
        ]
        if len(found) != 1:
            raise _Gather(f"cannot uniquely type column {ref.sql()}")
        return found[0]

    # Group keys become __g{i} columns of the partial table.
    group_columns: List[Column] = []
    for position, group_expr in enumerate(query.group_by):
        if not isinstance(group_expr, ColumnRef):
            raise _Gather(
                f"GROUP BY expression {group_expr.sql()} is not a column"
            )
        group_columns.append(
            Column(f"__g{position}", column_type(group_expr))
        )

    # Every distinct aggregate call decomposes into partial columns
    # plus a merge expression over them.
    shard_agg_items: List[SelectItem] = []
    agg_columns: List[Column] = []
    merge_exprs: Dict[str, Expr] = {}

    def numeric_sum_type(arg_type: SQLType) -> SQLType:
        return arg_type if arg_type in (SQLType.INT, SQLType.FLOAT) else SQLType.FLOAT

    def decompose(call: FuncCall) -> None:
        text = call.sql()
        if text in merge_exprs:
            return
        if call.distinct:
            raise _Gather(f"DISTINCT aggregate {text} is not decomposable")
        name = call.name.upper()
        if not (name == "COUNT" and len(call.args) == 1 and isinstance(call.args[0], Star)):
            if len(call.args) != 1:
                raise _Gather(f"aggregate {text} has an unexpected arity")
            arg = call.args[0]
            if isinstance(arg, ColumnRef):
                arg_type = column_type(arg)
            elif isinstance(arg, Literal):
                arg_type = infer_type(arg.value)
            else:
                raise _Gather(
                    f"aggregate argument {arg.sql()} is not a plain column"
                )
        position = len(merge_exprs)
        if name == "COUNT":
            alias = f"__a{position}"
            shard_agg_items.append(SelectItem(expr=call, alias=alias))
            agg_columns.append(Column(alias, SQLType.INT))
            merge_exprs[text] = FuncCall("SUM", (ColumnRef(alias),))
        elif name == "SUM":
            alias = f"__a{position}"
            shard_agg_items.append(SelectItem(expr=call, alias=alias))
            agg_columns.append(Column(alias, numeric_sum_type(arg_type)))
            merge_exprs[text] = FuncCall("SUM", (ColumnRef(alias),))
        elif name in ("MIN", "MAX"):
            alias = f"__a{position}"
            shard_agg_items.append(SelectItem(expr=call, alias=alias))
            agg_columns.append(Column(alias, arg_type))
            merge_exprs[text] = FuncCall(name, (ColumnRef(alias),))
        elif name == "AVG":
            # AVG does not distribute; ship a SUM+COUNT pair instead.
            # NULL sums divide to NULL, and a zero count implies a NULL
            # sum, so the division never sees 0 with a live numerator.
            sum_alias, count_alias = f"__a{position}s", f"__a{position}c"
            shard_agg_items.append(
                SelectItem(expr=FuncCall("SUM", call.args), alias=sum_alias)
            )
            shard_agg_items.append(
                SelectItem(expr=FuncCall("COUNT", call.args), alias=count_alias)
            )
            agg_columns.append(Column(sum_alias, SQLType.FLOAT))
            agg_columns.append(Column(count_alias, SQLType.INT))
            merge_exprs[text] = BinaryOp(
                "/",
                FuncCall("SUM", (ColumnRef(sum_alias),)),
                FuncCall("SUM", (ColumnRef(count_alias),)),
            )
        else:
            raise _Gather(f"unknown aggregate {text}")

    rewrite_sources: List[Expr] = [item.expr for item in query.items]
    if query.having is not None:
        rewrite_sources.append(query.having)
    rewrite_sources.extend(order.expr for order in query.order_by)
    for source in rewrite_sources:
        for node in walk_expr(source):
            if isinstance(node, FuncCall) and node.is_aggregate:
                decompose(node)

    group_refs = {
        expr.sql(): ColumnRef(f"__g{i}")
        for i, expr in enumerate(query.group_by)
    }

    def rewrite(expr: Expr) -> Expr:
        replacement = group_refs.get(expr.sql())
        if replacement is not None:
            return replacement
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            return merge_exprs[expr.sql()]
        if isinstance(expr, Star):
            raise _Gather("'*' cannot appear with aggregation")
        if isinstance(expr, ColumnRef):
            raise _Gather(
                f"column {expr.sql()} is neither grouped nor aggregated"
            )
        rebuilt = _rebuild(expr, rewrite)
        return rebuilt

    merge_items = tuple(
        SelectItem(expr=rewrite(item.expr), alias=item.output_name(position))
        for position, item in enumerate(query.items)
    )
    merge_having = (
        rewrite(query.having) if query.having is not None else None
    )
    output_names = {
        item.output_name(i).lower() for i, item in enumerate(query.items)
    }
    merge_order: List[OrderItem] = []
    for order in query.order_by:
        expr = order.expr
        if (
            isinstance(expr, ColumnRef)
            and expr.table is None
            and expr.name.lower() in output_names
            and expr.sql() not in group_refs
        ):
            merge_order.append(order)  # alias of a merge item: keep as-is
        else:
            merge_order.append(
                OrderItem(expr=rewrite(expr), descending=order.descending)
            )

    shard_items = tuple(
        SelectItem(expr=expr, alias=f"__g{i}")
        for i, expr in enumerate(query.group_by)
    ) + tuple(shard_agg_items)
    shard_query = dataclasses.replace(
        query,
        items=shard_items,
        having=None,
        order_by=(),
        limit=None,
        distinct=False,
    )
    merge_query = SelectQuery(
        items=merge_items,
        table=TableRef(PARTIAL_TABLE),
        joins=(),
        where=None,
        group_by=tuple(
            ColumnRef(f"__g{i}") for i in range(len(query.group_by))
        ),
        having=merge_having,
        order_by=tuple(merge_order),
        limit=query.limit,
        distinct=False,
    )
    partial_schema = TableSchema(
        name=PARTIAL_TABLE, columns=group_columns + agg_columns
    )
    return DistributedPlan(
        PARTIAL_AGG,
        shard_query=shard_query,
        merge_query=merge_query,
        partial_schema=partial_schema,
    )


def _rebuild(expr: Expr, transform) -> Expr:
    """Rebuild one node with transformed children (structural recursion)."""
    from repro.sql.ast import (
        Between,
        CaseWhen,
        InList,
        IsNull,
        UnaryOp,
    )

    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, transform(expr.left), transform(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, transform(expr.operand))
    if isinstance(expr, IsNull):
        return IsNull(transform(expr.operand), expr.negated)
    if isinstance(expr, InList):
        return InList(
            transform(expr.operand),
            tuple(transform(item) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            transform(expr.operand),
            transform(expr.low),
            transform(expr.high),
            expr.negated,
        )
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(transform(arg) for arg in expr.args),
            expr.distinct,
        )
    if isinstance(expr, CaseWhen):
        return CaseWhen(
            branches=tuple(
                (transform(condition), transform(value))
                for condition, value in expr.branches
            ),
            default=(
                transform(expr.default) if expr.default is not None else None
            ),
        )
    raise _Gather(f"cannot rewrite expression {expr.sql()} for merging")
