"""Hash partitioning: which shard owns which rows of which table.

Every table in the cluster is hash-partitioned on one column (the
first column of its ``CREATE TABLE`` by default). Routing hashes a
*canonical, type-tagged* encoding of the key value with CRC32, so

* equal values always land on the same shard regardless of Python
  type drift (``1`` and ``1.0`` in an INT column hash identically —
  values are coerced through the column type first);
* the mapping is stable across processes and restarts (no reliance on
  Python's randomized ``hash``).

Two tables partitioned on columns of the same value domain are
*co-partitioned*: rows with equal keys share a shard, which is what
lets the coordinator run equi-joins on partition keys shard-locally.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ClusterError
from repro.sql.schema import TableSchema
from repro.sql.types import SQLType, Value, coerce


def canonical_key_bytes(value: Value) -> bytes:
    """A type-tagged stable encoding of one partition-key value.

    Numbers (ints, floats, bools) share the numeric tag so equal
    quantities agree across column types; NULL gets its own tag and
    deterministically routes to shard 0.
    """
    if value is None:
        return b"z:"
    if isinstance(value, (bool, int, float)):
        return b"n:" + repr(float(value)).encode("ascii")
    return b"s:" + str(value).encode("utf-8")


def hash_value(value: Value, num_shards: int) -> int:
    """Map one key value to a shard id in ``[0, num_shards)``."""
    if value is None:
        return 0
    return zlib.crc32(canonical_key_bytes(value)) % num_shards


@dataclass
class TablePartitioning:
    """One table's placement: its partition-key column and type."""

    table: str
    column: str
    sql_type: SQLType

    def to_dict(self) -> Dict:
        return {
            "table": self.table,
            "column": self.column,
            "type": self.sql_type.value,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TablePartitioning":
        return cls(data["table"], data["column"], SQLType(data["type"]))


class PartitionMap:
    """The cluster-wide routing table: table -> key column -> shard.

    Persisted in the coordinator's ``cluster.json`` so a reopened
    cluster routes rows exactly as the one that wrote them.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ClusterError(f"need at least 1 shard, got {num_shards}")
        self.num_shards = num_shards
        self._tables: Dict[str, TablePartitioning] = {}

    def register(self, schema: TableSchema, column: Optional[str] = None) -> None:
        """Register a table, defaulting the key to its first column."""
        if column is None:
            column = schema.columns[0].name
        position = schema.index_of(column)
        self._tables[schema.name.lower()] = TablePartitioning(
            table=schema.name,
            column=column,
            sql_type=schema.columns[position].sql_type,
        )

    def unregister(self, table: str) -> None:
        self._tables.pop(table.lower(), None)

    def partitioning(self, table: str) -> TablePartitioning:
        try:
            return self._tables[table.lower()]
        except KeyError:
            raise ClusterError(
                f"table {table!r} is not registered with the cluster"
            ) from None

    def is_registered(self, table: str) -> bool:
        return table.lower() in self._tables

    def table_names(self) -> List[str]:
        """Registered table names (lowered), sorted."""
        return sorted(self._tables)

    def key_column(self, table: str) -> str:
        return self.partitioning(table).column

    def shard_of(self, table: str, value: Value) -> int:
        """The shard owning rows of ``table`` whose key is ``value``."""
        part = self.partitioning(table)
        return hash_value(coerce(value, part.sql_type), self.num_shards)

    def to_dict(self) -> Dict:
        return {
            "num_shards": self.num_shards,
            "tables": [
                self._tables[name].to_dict() for name in sorted(self._tables)
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PartitionMap":
        out = cls(int(data["num_shards"]))
        for entry in data.get("tables", ()):
            part = TablePartitioning.from_dict(entry)
            out._tables[part.table.lower()] = part
        return out
