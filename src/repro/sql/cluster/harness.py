"""Crash-matrix harness for the sharded data plane.

Extends the single-node recovery harness
(:mod:`repro.durability.harness`) to cluster topologies. The same
seeded workloads drive a :class:`ClusterDatabase` instead of a
:class:`~repro.durability.DurableDatabase`, in two modes:

* **whole-cluster crashes** (``failover=False``) — a
  :class:`~repro.errors.SimulatedCrash` at any reachable point kills
  the coordinator and every shard at once. The trial then reopens the
  directory and requires the recovered, merged cluster state to equal
  the acknowledged shadow (modulo a commit that was legitimately in
  flight) — the single-node durability contract, now spanning shard
  WALs, replica logs, role markers, cluster metadata, and the
  coordinator's prepare/done log.

* **failover trials** (``failover=True``) — a crash inside a shard's
  primary is *absorbed*: the coordinator promotes the replica and
  re-routes the in-flight statement exactly-once, so the workload runs
  to completion and the final state must equal a never-crashed run.
  Crash points outside any shard (coordinator log, cluster metadata,
  promotion itself) still kill the whole process and are verified the
  whole-cluster way.

Double-crash trials chain the two: a first crash at a shard-side
shipping point triggers a failover, and a second armed point inside
``promote()`` kills the process mid-failover — recovery must still
converge (the role marker flips atomically, and either home holds
every acknowledged write).
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.durability.crash import CrashInjector
from repro.durability.database import dump_database
from repro.durability.harness import (
    CrashMatrixReport,
    TrialResult,
    _run_workload,
    random_dml_workload,
)
from repro.errors import SimulatedCrash
from repro.sql.cluster.coordinator import ClusterDatabase, canonicalize
from repro.sql.engine import Database

#: crash points inside Shard.promote(), only reachable via a failover
PROMOTE_POINTS = (
    "promote-before-replay",
    "promote-after-replay",
    "promote-before-reseed",
)


def discover_cluster_crash_points(
    directory: Union[str, Path],
    workload: Sequence[str],
    num_shards: int = 2,
) -> Dict[str, int]:
    """Run the workload crash-free and count reaches of every point."""
    directory = Path(directory)
    shutil.rmtree(directory, ignore_errors=True)
    recorder = CrashInjector()
    cluster = ClusterDatabase(
        directory, num_shards=num_shards, crash=recorder, failover=False
    )
    _run_workload(cluster, workload)
    cluster.close()
    return dict(recorder.seen)


def run_cluster_crash_trial(
    directory: Union[str, Path],
    workload: Sequence[str],
    point: str,
    occurrence: int,
    seed: int = 0,
    num_statements: Optional[int] = None,
    num_shards: int = 2,
    failover: bool = False,
    trigger_point: Optional[str] = None,
    trigger_occurrence: int = 1,
) -> TrialResult:
    """Crash a cluster at one (point, occurrence), recover, verify.

    With ``failover=True`` shard-side crashes are absorbed by
    promotion, so the workload usually completes and the live cluster
    is verified *before* the reopen as well. ``trigger_point`` arms a
    second, earlier crash (absorbed by failover) so that ``point`` can
    name a promotion-internal site — the double-crash mode.
    """
    directory = Path(directory)
    shutil.rmtree(directory, ignore_errors=True)
    crash = CrashInjector().at(point, occurrence)
    if trigger_point is not None:
        crash.at(trigger_point, trigger_occurrence)
    n = num_statements if num_statements is not None else len(workload)

    def build(ok: bool, crashed: bool, detail: str = "") -> TrialResult:
        return TrialResult(
            point, occurrence, seed, crashed, ok, detail, n,
            topology="cluster",
            trigger_point=trigger_point or "",
            trigger_occurrence=trigger_occurrence if trigger_point else 0,
        )

    live_state = None
    try:
        cluster = ClusterDatabase(
            directory,
            num_shards=num_shards,
            crash=crash,
            failover=failover,
        )
    except SimulatedCrash:
        shadow, inflight, crashed = Database(), None, True
    else:
        shadow, inflight, crashed = _run_workload(cluster, workload)
        if not crashed:
            live_state = cluster.state()
        cluster.close()

    expected = canonicalize(dump_database(shadow))
    if live_state is not None and live_state != expected:
        return build(
            False, crashed,
            "live post-failover state differs from the acknowledged state",
        )

    recovered = ClusterDatabase(directory, num_shards=num_shards)
    recovered_state = recovered.state()
    recovered.close()

    if recovered_state == expected:
        return build(True, crashed)
    if inflight is not None:
        # The crash hit mid-commit: the transaction may legitimately
        # have become durable. All-or-nothing is still required.
        for sql in inflight:
            shadow.execute(sql)
        if recovered_state == canonicalize(dump_database(shadow)):
            return build(True, crashed, "in-flight commit landed")
    return build(
        False,
        crashed,
        f"recovered tables "
        f"{sorted(t['name'] for t in recovered_state['tables'])} "
        "differ from the acknowledged state",
    )


def run_cluster_crash_matrix(
    base_dir: Union[str, Path],
    seeds: Sequence[int] = (0, 1, 2),
    num_statements: int = 30,
    num_shards: int = 2,
    max_occurrences_per_point: int = 2,
    failover: bool = False,
) -> CrashMatrixReport:
    """Crash every reachable point (first and last occurrence) per seed."""
    base_dir = Path(base_dir)
    report = CrashMatrixReport()
    for seed in seeds:
        workload = random_dml_workload(seed, num_statements=num_statements)
        trial_dir = base_dir / f"seed{seed}"
        seen = discover_cluster_crash_points(trial_dir, workload, num_shards)
        for name, count in seen.items():
            report.points[name] = max(report.points.get(name, 0), count)
        for point in sorted(seen):
            occurrences = sorted({1, seen[point]})[:max_occurrences_per_point]
            for occurrence in occurrences:
                report.trials.append(
                    run_cluster_crash_trial(
                        trial_dir,
                        workload,
                        point,
                        occurrence,
                        seed,
                        num_statements=num_statements,
                        num_shards=num_shards,
                        failover=failover,
                    )
                )
    return report


def run_cluster_failover_matrix(
    base_dir: Union[str, Path],
    seed: int = 0,
    num_statements: int = 30,
    num_shards: int = 2,
) -> CrashMatrixReport:
    """Failover-mode trials, including crashes *inside* promotion.

    Every reachable point is tried with failover enabled (shard-side
    crashes are absorbed, the rest verified as whole-cluster crashes).
    Then each shipping-path point doubles as the trigger for a second
    crash armed at every promotion-internal point — kill the primary,
    then kill the process mid-promotion — and recovery must still hold.
    """
    base_dir = Path(base_dir)
    report = CrashMatrixReport()
    workload = random_dml_workload(seed, num_statements=num_statements)
    trial_dir = base_dir / f"seed{seed}"
    seen = discover_cluster_crash_points(trial_dir, workload, num_shards)
    report.points.update(seen)
    for point in sorted(seen):
        report.trials.append(
            run_cluster_crash_trial(
                trial_dir, workload, point, 1, seed,
                num_statements=num_statements,
                num_shards=num_shards,
                failover=True,
            )
        )
    triggers = [name for name in sorted(seen) if name.startswith("ship-")]
    for trigger in triggers:
        for promote_point in PROMOTE_POINTS:
            report.trials.append(
                run_cluster_crash_trial(
                    trial_dir, workload, promote_point, 1, seed,
                    num_statements=num_statements,
                    num_shards=num_shards,
                    failover=True,
                    trigger_point=trigger,
                    trigger_occurrence=1,
                )
            )
    return report
