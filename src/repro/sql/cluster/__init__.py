"""A sharded SQL data plane with replicated WALs and failover.

Tables are hash-partitioned across N shards; each shard is a primary
:class:`~repro.durability.DurableDatabase` whose CRC-framed WAL is
synchronously shipped to a warm replica. The
:class:`~repro.sql.cluster.coordinator.ClusterDatabase` plans SELECTs
into single-shard, scatter, partial-aggregate, or gather strategies,
routes DML by partition key, commits multi-shard statements through a
prepare/done log, and — on a primary crash — promotes the replica and
re-routes in-flight statements exactly-once.

Kept out of :mod:`repro.sql`'s namespace on purpose:
``repro.durability`` imports the SQL core, and this package imports
``repro.durability``, so it must only ever be imported explicitly.
"""

from repro.sql.cluster.coordinator import (
    ClusterDatabase,
    ClusterQueryResult,
    ClusterStats,
    canonicalize,
)
from repro.sql.cluster.harness import (
    PROMOTE_POINTS,
    discover_cluster_crash_points,
    run_cluster_crash_matrix,
    run_cluster_crash_trial,
    run_cluster_failover_matrix,
)
from repro.sql.cluster.partition import (
    PartitionMap,
    TablePartitioning,
    hash_value,
)
from repro.sql.cluster.replicate import (
    RECEIVE_CORRUPT,
    RECEIVE_OK,
    RECEIVE_REORDER,
    RECEIVE_TORN,
    ReceiveResult,
    ReplicationStats,
    ShardReplica,
    ShardReplicator,
)
from repro.sql.cluster.scatter import (
    GATHER,
    PARTIAL_AGG,
    SCATTER,
    SINGLE_SHARD,
    DistributedPlan,
    merge_scatter,
    partition_key_equality,
    plan_select,
)
from repro.sql.cluster.shard import Shard, ShardCrashed

__all__ = [
    "ClusterDatabase",
    "ClusterQueryResult",
    "ClusterStats",
    "canonicalize",
    "PROMOTE_POINTS",
    "discover_cluster_crash_points",
    "run_cluster_crash_matrix",
    "run_cluster_crash_trial",
    "run_cluster_failover_matrix",
    "PartitionMap",
    "TablePartitioning",
    "hash_value",
    "RECEIVE_CORRUPT",
    "RECEIVE_OK",
    "RECEIVE_REORDER",
    "RECEIVE_TORN",
    "ReceiveResult",
    "ReplicationStats",
    "ShardReplica",
    "ShardReplicator",
    "GATHER",
    "PARTIAL_AGG",
    "SCATTER",
    "SINGLE_SHARD",
    "DistributedPlan",
    "merge_scatter",
    "partition_key_equality",
    "plan_select",
    "Shard",
    "ShardCrashed",
]
