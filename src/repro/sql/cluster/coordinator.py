"""The cluster coordinator: routing, 2PC-lite commits, failover.

:class:`ClusterDatabase` presents the same ``execute(sql)`` surface as
:class:`~repro.sql.Database`, but hash-partitions every table across N
:class:`~repro.sql.cluster.shard.Shard` pairs (each a primary
:class:`~repro.durability.DurableDatabase` with a log-shipped replica):

* **DDL** broadcasts to every shard, so all shards share the schema;
* **INSERT** splits its VALUES rows by the partition key's hash;
* **UPDATE/DELETE** prune to one shard when the WHERE clause pins the
  partition key, else broadcast (filters apply shard-locally);
* **SELECT** runs the plan :func:`~repro.sql.cluster.scatter.plan_select`
  chooses — pruned, scattered, two-phase aggregated, or gathered —
  fanning shards out over a thread pool and merging at the coordinator.

Every write carries an **exactly-once tag** ``e{epoch}.{seq}.s{shard}``
(epoch bumps at each coordinator open, making tags collision-free
across restarts). Tags persist in each shard's WAL and snapshot, so
after *any* crash the question "did this statement commit?" has a
durable answer — the foundation for both failover re-routing and
multi-shard commit recovery.

Multi-shard transactions use a 2PC-lite protocol on the coordinator's
own CRC-framed log: a fsynced ``prepare`` record (the commit decision,
listing every shard's tagged statements) precedes the per-shard commit
fan-out, and a ``done`` record retires it. Reopening the coordinator
resolves in-doubt prepares: if any tagged statement is durable anywhere
the transaction rolls forward (missing statements re-applied
tag-checked), otherwise it is presumed aborted.

On a primary crash (:class:`~repro.sql.cluster.shard.ShardCrashed`)
with ``failover=True`` the coordinator promotes the shard's replica and
re-routes the in-flight statement — tag-checked, so a statement whose
ack was lost after commit is never applied twice. With
``failover=False`` the raw crash propagates (whole-process death) or,
for an already-dead shard, writes raise
:class:`~repro.errors.ShardUnavailableError` and reads either fail or
are served stale-labeled from the replica (``allow_stale=True``).
"""

from __future__ import annotations

import dataclasses
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.durability.crash import CrashInjector
from repro.durability.wal import WriteAheadLog, read_wal
from repro.durability.io import atomic_write_text
from repro.errors import (
    ClusterError,
    ShardUnavailableError,
    SQLError,
    WALCorruptionError,
)
from repro.sql.ast import (
    CreateIndex,
    CreateTable,
    DeleteFrom,
    DropTable,
    ExplainQuery,
    InsertInto,
    SelectQuery,
    UpdateTable,
)
from repro.sql.catalog import Catalog
from repro.sql.cluster.partition import PartitionMap
from repro.sql.cluster.scatter import (
    GATHER,
    PARTIAL_AGG,
    SCATTER,
    SINGLE_SHARD,
    DistributedPlan,
    merge_scatter,
    partition_key_equality,
    plan_select,
)
from repro.sql.cluster.shard import Shard, ShardCrashed
from repro.sql.engine import Database, QueryResult
from repro.sql.eval import RowEnv, evaluate
from repro.sql.executor import (
    ExecutionStats,
    ExecutorOptions,
    _sort_key,
    execute_select,
    explain_plan,
)
from repro.sql.parser import parse_sql
from repro.sql.schema import TableSchema
from repro.sql.table import Table

CLUSTER_META = "cluster.json"
COORDINATOR_LOG = "coordinator.log"


@dataclass
class ClusterQueryResult(QueryResult):
    """A :class:`QueryResult` plus distributed-execution provenance."""

    strategy: str = ""
    #: shard ids that executed (coordinator-only merges excluded)
    shards: List[int] = field(default_factory=list)
    #: True when any contributing read came from a replica of a dead
    #: primary — the rows may trail the last acknowledged writes
    stale: bool = False
    #: worst replication lag (records) among stale contributors
    stale_lag: int = 0
    #: why the planner fell back to gather (empty otherwise)
    reason: str = ""


@dataclass
class ClusterStats:
    """Lifetime counters of one coordinator."""

    selects: int = 0
    by_strategy: Dict[str, int] = field(default_factory=dict)
    failovers: int = 0
    #: statements re-applied on a promoted primary after a crash
    reroutes_applied: int = 0
    #: re-routes skipped because the tag was already durable
    reroutes_deduped: int = 0
    last_strategy: str = ""
    last_shard_stats: List[ExecutionStats] = field(default_factory=list)
    last_merge_stats: Optional[ExecutionStats] = None

    def record_select(self, strategy: str) -> None:
        self.selects += 1
        self.by_strategy[strategy] = self.by_strategy.get(strategy, 0) + 1
        self.last_strategy = strategy

    def modeled_parallel_speedup(self) -> float:
        """Critical-path speedup of the last fan-out query.

        Work is modeled as executor row touches (scan + join probes).
        A single node does the *sum* of all shards' work serially; the
        cluster's wall-clock is the *slowest shard* plus the merge —
        the ratio is the speedup an N-worker data plane buys, reported
        independently of the host's thread-scheduling noise.
        """

        def touches(stats: ExecutionStats) -> int:
            return stats.rows_scanned + stats.join_probes

        per_shard = [touches(s) for s in self.last_shard_stats]
        total = sum(per_shard)
        merge = touches(self.last_merge_stats) if self.last_merge_stats else 0
        critical = max(per_shard, default=0) + merge
        if critical <= 0 or total <= 0:
            return 1.0
        return (total + merge) / critical


def canonicalize(dump: Dict) -> Dict:
    """Order-insensitive form of a :func:`dump_database` dict.

    Partitioned storage interleaves rows differently from a single
    node's insert order, so state comparisons sort each table's rows by
    the executor's SQL value ordering (and drop index metadata, which
    is placement-local).
    """
    tables = []
    for table in sorted(dump.get("tables", ()), key=lambda t: t["name"].lower()):
        rows = [list(row) for row in table["rows"]]
        rows.sort(key=lambda row: tuple(_sort_key(value) for value in row))
        tables.append(
            {"name": table["name"], "columns": table["columns"], "rows": rows}
        )
    return {"tables": tables}


@dataclass
class _ClusterTxn:
    """Coordinator-side state of one open multi-shard transaction."""

    xid: str
    #: shard id -> [(tag, sql), ...] successfully applied there
    buffered: Dict[int, List[Tuple[str, str]]] = field(default_factory=dict)
    begun: Set[int] = field(default_factory=set)


class ClusterDatabase:
    """A hash-partitioned SQL database over replicated durable shards."""

    def __init__(
        self,
        directory: Union[str, Path],
        num_shards: int = 2,
        crash: Optional[CrashInjector] = None,
        durable: bool = True,
        failover: bool = True,
        allow_stale: bool = False,
        options: Optional[ExecutorOptions] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.crash = crash
        self.durable = durable
        self.failover = failover
        self.allow_stale = allow_stale
        self.options = options or ExecutorOptions()
        self.stats = ClusterStats()
        self._txn: Optional[_ClusterTxn] = None
        self._seq = 0

        meta_path = self.directory / CLUSTER_META
        if meta_path.exists():
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            self.pmap = PartitionMap.from_dict(meta["partition_map"])
            self.epoch = int(meta["epoch"]) + 1
        else:
            self.pmap = PartitionMap(num_shards)
            self.epoch = 1
        self._write_meta()

        self.shards = [
            Shard(
                self.directory / f"shard{i}",
                shard_id=i,
                crash=self.crash,
                durable=self.durable,
            )
            for i in range(self.pmap.num_shards)
        ]
        self._pool = ThreadPoolExecutor(max_workers=self.pmap.num_shards)
        self._open_coordinator_log()
        self._sync_pmap_with_catalog()

    @classmethod
    def from_database(
        cls,
        db: Database,
        directory: Union[str, Path],
        num_shards: int = 2,
        **kwargs,
    ) -> "ClusterDatabase":
        """Partition an existing single-node database into a cluster."""
        cluster = cls(directory, num_shards=num_shards, **kwargs)
        for name in db.table_names():
            source = db.table(name)
            cluster.pmap.register(source.schema)
            key_position = source.schema.index_of(cluster.pmap.key_column(name))
            parts: List[List[Tuple]] = [
                [] for _ in range(cluster.pmap.num_shards)
            ]
            for row in source.rows:
                parts[cluster.pmap.shard_of(name, row[key_position])].append(row)
            for shard in cluster.shards:
                partition = Table(
                    TableSchema(source.schema.name, list(source.schema.columns)),
                    rows=parts[shard.shard_id],
                )
                for indexed in source.index_names():
                    partition.create_index(indexed)
                shard.put_table(
                    partition, tag=cluster._next_tag(shard.shard_id)
                )
        cluster._write_meta()
        return cluster

    # -- metadata / logs ---------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.pmap.num_shards

    @property
    def catalog(self) -> Catalog:
        """The authoritative schema catalog (shard 0's primary)."""
        return self.shards[0].primary.db.catalog

    def _write_meta(self) -> None:
        atomic_write_text(
            self.directory / CLUSTER_META,
            json.dumps(
                {
                    "num_shards": self.pmap.num_shards,
                    "epoch": self.epoch,
                    "partition_map": self.pmap.to_dict(),
                },
                sort_keys=True,
            ),
            crash=self.crash,
            label="cluster",
            durable=self.durable,
        )

    def _next_tag(self, shard_id: int) -> str:
        self._seq += 1
        return f"e{self.epoch}.{self._seq}.s{shard_id}"

    def _sync_pmap_with_catalog(self) -> None:
        """Heal the partition map against shard 0's catalog.

        A crash between a DDL fan-out and the ``cluster.json`` write
        leaves the map stale; prepare resolution has already made the
        shard catalogs consistent, so they are authoritative.
        """
        live = {name.lower(): name for name in self.catalog.names()}
        changed = False
        for lowered, name in live.items():
            if not self.pmap.is_registered(lowered):
                self.pmap.register(self.catalog.get(name).schema)
                changed = True
        for registered in self.pmap.table_names():
            if registered not in live:
                self.pmap.unregister(registered)
                changed = True
        if changed:
            self._write_meta()

    def _open_coordinator_log(self) -> None:
        path = self.directory / COORDINATOR_LOG
        scan = read_wal(path)
        if scan.error is not None:
            raise WALCorruptionError(
                f"coordinator log {path} is corrupt: {scan.error}"
            )
        self.coordinator_log = WriteAheadLog(
            path,
            crash=self.crash,
            durable=self.durable,
            next_lsn=scan.last_lsn + 1,
        )
        if scan.torn_bytes:
            self.coordinator_log.truncate_to(scan.valid_bytes)
        self._resolve_prepares(scan.records)

    def _resolve_prepares(self, records: List[Dict]) -> None:
        """Settle in-doubt multi-shard commits left by a crash.

        A ``prepare`` without a matching ``done`` is in doubt. If any
        of its tagged statements is durable on its shard, the commit
        decision was made — roll the rest forward (tag-checked). If no
        tag is durable anywhere, no shard acknowledged: presumed abort,
        and the shards' uncommitted WAL frames are already invisible.
        """
        finished = {
            record["xid"] for record in records if record.get("t") == "done"
        }
        for record in records:
            if record.get("t") != "prepare" or record["xid"] in finished:
                continue
            shard_statements = {
                int(shard_id): [(tag, sql) for tag, sql in pairs]
                for shard_id, pairs in record["shards"].items()
            }
            committed = any(
                self.shards[shard_id].has_applied(tag)
                for shard_id, pairs in shard_statements.items()
                for tag, _ in pairs
            )
            if not committed:
                continue
            for shard_id, pairs in shard_statements.items():
                for tag, sql in pairs:
                    if self.shards[shard_id].has_applied(tag):
                        continue
                    self._autocommit_on_shard(shard_id, sql, tag)
                    self.stats.reroutes_applied += 1
        # Everything is settled; start the log fresh for this epoch.
        self.coordinator_log.reset()

    # -- failover plumbing -------------------------------------------------
    def _promote_or_die(self, shard_id: int, crashed: ShardCrashed) -> Shard:
        if not self.failover:
            # Without failover a shard crash is a whole-process crash;
            # surface the raw simulated crash for the recovery harness.
            raise crashed.cause
        self.stats.failovers += 1
        shard = self.shards[shard_id]
        shard.promote()
        return shard

    def _ensure_live(self, shard_id: int) -> Tuple[Shard, bool]:
        """(shard, was_promoted): fail over a shard declared dead *before*
        the operation (external ``kill()``), which raises
        :class:`ShardUnavailableError` rather than :class:`ShardCrashed`
        and so never reaches the mid-operation promotion handlers."""
        shard = self.shards[shard_id]
        if shard.dead and self.failover:
            self.stats.failovers += 1
            shard.promote()
            return shard, True
        return shard, False

    def _autocommit_on_shard(
        self, shard_id: int, sql: str, tag: str
    ) -> QueryResult:
        shard, _ = self._ensure_live(shard_id)
        try:
            return shard.execute(sql, tag=tag)
        except ShardCrashed as crashed:
            shard = self._promote_or_die(shard_id, crashed)
            if shard.has_applied(tag):
                # The commit landed before the crash; only the ack was
                # lost. Re-applying would double-count — skip.
                self.stats.reroutes_deduped += 1
                return QueryResult(columns=[], rows=[], rowcount=0)
            self.stats.reroutes_applied += 1
            return shard.execute(sql, tag=tag)

    def _txn_on_shard(self, shard_id: int, sql: str, tag: str) -> QueryResult:
        txn = self._txn
        assert txn is not None
        shard, promoted = self._ensure_live(shard_id)
        if shard_id not in txn.begun:
            try:
                shard.begin()
            except ShardCrashed as crashed:
                shard = self._promote_or_die(shard_id, crashed)
                shard.begin()
            txn.begun.add(shard_id)
        elif promoted:
            # The promoted primary never saw this transaction's
            # uncommitted frames; rebuild it from the coordinator's
            # buffer before running the new statement.
            shard.begin()
            for earlier_tag, earlier_sql in txn.buffered.get(shard_id, []):
                shard.execute(earlier_sql, tag=earlier_tag)
            self.stats.reroutes_applied += 1
        try:
            result = shard.execute(sql, tag=tag)
        except ShardCrashed as crashed:
            shard = self._promote_or_die(shard_id, crashed)
            # The promoted primary never saw this transaction's frames
            # (they were uncommitted, hence unshipped at the batch
            # boundary or dropped at replay). Rebuild it from the
            # coordinator's buffer, then retry the current statement.
            shard.begin()
            for earlier_tag, earlier_sql in txn.buffered.get(shard_id, []):
                shard.execute(earlier_sql, tag=earlier_tag)
            self.stats.reroutes_applied += 1
            result = shard.execute(sql, tag=tag)
        except SQLError:
            # PostgreSQL-style: a statement error aborts the enclosing
            # transaction — on every shard, so the cluster stays atomic.
            self._abort_cluster_txn()
            raise
        txn.buffered.setdefault(shard_id, []).append((tag, sql))
        return result

    def _apply_many(self, statements: List[Tuple[int, str]]) -> int:
        """Apply ``(shard, sql)`` pairs; returns the summed rowcount.

        Inside a cluster transaction the pairs simply join it. In
        autocommit mode a batch touching more than one shard gets the
        same prepare/done protocol as a transaction commit: a statement
        split across shards (or broadcast to all of them) must not
        half-apply when a crash lands between the per-shard commits.
        """
        if self._txn is not None:
            total = 0
            for shard_id, sql in statements:
                result = self._txn_on_shard(
                    shard_id, sql, self._next_tag(shard_id)
                )
                total += result.rowcount
            return total
        if len(statements) == 1:
            shard_id, sql = statements[0]
            tag = self._next_tag(shard_id)
            return self._autocommit_on_shard(shard_id, sql, tag).rowcount
        tagged = [
            (shard_id, sql, self._next_tag(shard_id))
            for shard_id, sql in statements
        ]
        self._seq += 1
        xid = f"s{self.epoch}.{self._seq}"
        payload: Dict[str, List[List[str]]] = {}
        for shard_id, sql, tag in tagged:
            payload.setdefault(str(shard_id), []).append([tag, sql])
        self.coordinator_log.append(
            {"t": "prepare", "xid": xid, "shards": payload}, sync=True
        )
        total = 0
        for shard_id, sql, tag in tagged:
            total += self._autocommit_on_shard(shard_id, sql, tag).rowcount
        self.coordinator_log.append({"t": "done", "xid": xid}, sync=False)
        return total

    # -- transactions ------------------------------------------------------
    def begin(self) -> None:
        if self._txn is not None:
            raise ClusterError(
                f"transaction {self._txn.xid} is already active (no nesting)"
            )
        self._seq += 1
        self._txn = _ClusterTxn(xid=f"x{self.epoch}.{self._seq}")

    def commit(self) -> None:
        if self._txn is None:
            raise ClusterError("no active cluster transaction to commit")
        txn, self._txn = self._txn, None
        involved = sorted(txn.begun)
        if not involved:
            return
        self.coordinator_log.append(
            {
                "t": "prepare",
                "xid": txn.xid,
                "shards": {
                    str(shard_id): txn.buffered.get(shard_id, [])
                    for shard_id in involved
                },
            },
            sync=True,
        )
        # The prepare record is the commit decision: from here the
        # transaction rolls forward on every shard, even across crashes.
        for shard_id in involved:
            shard, promoted = self._ensure_live(shard_id)
            if promoted:
                # Killed between a statement and the commit: the new
                # primary has no open transaction, only the prepare
                # record's intent. Roll the buffer forward tag-checked.
                self._roll_forward(shard, txn.buffered.get(shard_id, []))
                continue
            try:
                shard.commit()
            except ShardCrashed as crashed:
                shard = self._promote_or_die(shard_id, crashed)
                self._roll_forward(shard, txn.buffered.get(shard_id, []))
        self.coordinator_log.append({"t": "done", "xid": txn.xid}, sync=False)

    def _roll_forward(self, shard: Shard, pairs: List) -> None:
        """Re-apply ``(tag, sql)`` pairs on a freshly promoted primary,
        skipping any whose effect already survived the failover."""
        for tag, sql in pairs:
            if shard.has_applied(tag):
                self.stats.reroutes_deduped += 1
                continue
            self.stats.reroutes_applied += 1
            shard.execute(sql, tag=tag)

    def rollback(self) -> None:
        if self._txn is None:
            raise ClusterError("no active cluster transaction to roll back")
        self._abort_cluster_txn()

    def _abort_cluster_txn(self) -> None:
        txn, self._txn = self._txn, None
        if txn is None:
            return
        for shard_id in sorted(txn.begun):
            shard = self.shards[shard_id]
            if shard.dead or not shard.in_transaction:
                continue  # a crashed/aborted shard already lost the frames
            try:
                shard.rollback()
            except ShardCrashed as crashed:
                # The promoted primary never had the transaction.
                self._promote_or_die(shard_id, crashed)

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    # -- statement routing -------------------------------------------------
    def execute(self, sql: str) -> QueryResult:
        """Parse and run one SQL statement across the cluster."""
        statement = parse_sql(sql)
        if isinstance(statement, SelectQuery):
            return self._execute_select(statement)
        if isinstance(statement, ExplainQuery):
            return self._execute_explain(statement)
        if isinstance(statement, CreateTable):
            self._require_no_txn("CREATE TABLE")
            result = self._broadcast(sql)
            schema = TableSchema.build(statement.name, list(statement.columns))
            self.pmap.register(schema)
            self._write_meta()
            return result
        if isinstance(statement, DropTable):
            self._require_no_txn("DROP TABLE")
            result = self._broadcast(sql)
            self.pmap.unregister(statement.name)
            self._write_meta()
            return result
        if isinstance(statement, CreateIndex):
            self._require_no_txn("CREATE INDEX")
            return self._broadcast(sql)
        if isinstance(statement, InsertInto):
            return self._execute_insert(statement)
        if isinstance(statement, UpdateTable):
            self._guard_key_update(statement)
            return self._execute_filtered_dml(
                statement.name, statement.where, sql
            )
        if isinstance(statement, DeleteFrom):
            return self._execute_filtered_dml(
                statement.name, statement.where, sql
            )
        raise ClusterError(
            f"unsupported statement {type(statement).__name__} for the cluster"
        )

    def _require_no_txn(self, what: str) -> None:
        if self._txn is not None:
            raise ClusterError(
                f"{what} inside a cluster transaction is not supported"
            )

    def _broadcast(self, sql: str) -> QueryResult:
        total = self._apply_many(
            [(shard.shard_id, sql) for shard in self.shards]
        )
        return QueryResult(columns=[], rows=[], rowcount=total)

    def _guard_key_update(self, statement: UpdateTable) -> None:
        if not self.pmap.is_registered(statement.name):
            return
        key_column = self.pmap.key_column(statement.name).lower()
        for column, _ in statement.assignments:
            if column.lower() == key_column:
                raise ClusterError(
                    f"UPDATE of partition key {statement.name}.{column} "
                    "would move rows between shards; re-insert instead"
                )

    def _execute_filtered_dml(
        self, table: str, where, sql: str
    ) -> QueryResult:
        if self.pmap.is_registered(table):
            pinned = partition_key_equality(where, table, table, self.pmap)
            if pinned is not None:
                shard_id = self.pmap.shard_of(table, pinned[0])
                total = self._apply_many([(shard_id, sql)])
                return QueryResult(columns=[], rows=[], rowcount=total)
        return self._broadcast(sql)

    def _execute_insert(self, statement: InsertInto) -> QueryResult:
        table = statement.name
        if not self.pmap.is_registered(table):
            raise ClusterError(
                f"table {table!r} is not registered with the cluster"
            )
        schema = self.catalog.get(table).schema
        key_column = self.pmap.key_column(table)
        key_position: Optional[int]
        if statement.columns:
            lowered = [c.lower() for c in statement.columns]
            key_position = (
                lowered.index(key_column.lower())
                if key_column.lower() in lowered
                else None
            )
        else:
            key_position = schema.index_of(key_column)
        env = RowEnv()  # INSERT values are constant expressions
        groups: Dict[int, List[Tuple]] = {}
        for row in statement.rows:
            value = (
                evaluate(row[key_position], env)
                if key_position is not None and key_position < len(row)
                else None
            )
            shard_id = self.pmap.shard_of(table, value)
            groups.setdefault(shard_id, []).append(row)
        statements = []
        for shard_id in sorted(groups):
            split = dataclasses.replace(
                statement, rows=tuple(groups[shard_id])
            )
            statements.append((shard_id, split.sql()))
        total = self._apply_many(statements)
        return QueryResult(columns=[], rows=[], rowcount=total)

    # -- SELECT execution --------------------------------------------------
    def _read_source(self, shard: Shard) -> Tuple[Catalog, bool, int]:
        """(catalog, is_stale, lag) to read one shard from."""
        shard, _ = self._ensure_live(shard.shard_id)
        if not shard.dead:
            return shard.primary.db.catalog, False, 0
        if self.allow_stale:
            return shard.replica.db.catalog, True, shard.replication_lag()
        raise ShardUnavailableError(
            f"shard {shard.shard_id} has no live primary and stale reads "
            "are not allowed",
            shard=shard.shard_id,
        )

    def _execute_select(self, query: SelectQuery) -> ClusterQueryResult:
        plan = plan_select(query, self.pmap, self.catalog)
        self.stats.record_select(plan.strategy)
        if plan.strategy == SINGLE_SHARD:
            return self._run_single_shard(plan, query)
        if plan.strategy in (SCATTER, PARTIAL_AGG):
            return self._run_fan_out(plan, query)
        return self._run_gather(plan, query)

    def _run_single_shard(
        self, plan: DistributedPlan, query: SelectQuery
    ) -> ClusterQueryResult:
        shard = self.shards[plan.target_shard or 0]
        catalog, stale, lag = self._read_source(shard)
        stats = ExecutionStats()
        columns, rows = execute_select(query, catalog, self.options, stats)
        self.stats.last_shard_stats = [stats]
        self.stats.last_merge_stats = None
        return ClusterQueryResult(
            columns=columns,
            rows=rows,
            rowcount=len(rows),
            strategy=SINGLE_SHARD,
            shards=[shard.shard_id],
            stale=stale,
            stale_lag=lag,
        )

    def _fan_out(
        self, shard_query: SelectQuery
    ) -> Tuple[List[Tuple[List[str], List[Tuple]]], List[ExecutionStats], bool, int]:
        sources = [self._read_source(shard) for shard in self.shards]
        stats_list = [ExecutionStats() for _ in self.shards]

        def run_one(position: int):
            catalog, _, _ = sources[position]
            return execute_select(
                shard_query, catalog, self.options, stats_list[position]
            )

        futures = [
            self._pool.submit(run_one, position)
            for position in range(len(self.shards))
        ]
        results = [future.result() for future in futures]
        stale = any(is_stale for _, is_stale, _ in sources)
        lag = max((l for _, is_stale, l in sources if is_stale), default=0)
        return results, stats_list, stale, lag

    def _run_fan_out(
        self, plan: DistributedPlan, query: SelectQuery
    ) -> ClusterQueryResult:
        assert plan.shard_query is not None
        results, stats_list, stale, lag = self._fan_out(plan.shard_query)
        self.stats.last_shard_stats = stats_list
        if plan.strategy == SCATTER:
            columns, rows = merge_scatter(plan, query, results)
            self.stats.last_merge_stats = None
        else:
            columns, rows = self._merge_partials(plan, results)
        return ClusterQueryResult(
            columns=columns,
            rows=rows,
            rowcount=len(rows),
            strategy=plan.strategy,
            shards=[shard.shard_id for shard in self.shards],
            stale=stale,
            stale_lag=lag,
        )

    def _merge_partials(
        self,
        plan: DistributedPlan,
        results: List[Tuple[List[str], List[Tuple]]],
    ) -> Tuple[List[str], List[Tuple]]:
        assert plan.partial_schema is not None and plan.merge_query is not None
        partials = Table(
            TableSchema(
                plan.partial_schema.name, list(plan.partial_schema.columns)
            )
        )
        for _, rows in results:
            partials.insert_many(rows)
        scratch = Database(self.options)
        scratch.add_table(partials)
        merge_stats = ExecutionStats()
        columns, rows = execute_select(
            plan.merge_query, scratch.catalog, self.options, merge_stats
        )
        self.stats.last_merge_stats = merge_stats
        return columns, rows

    def _run_gather(
        self, plan: DistributedPlan, query: SelectQuery
    ) -> ClusterQueryResult:
        sources = [self._read_source(shard) for shard in self.shards]
        scratch = Database(self.options)
        for name in self.catalog.names():
            schema = self.catalog.get(name).schema
            union = Table(TableSchema(schema.name, list(schema.columns)))
            for catalog, _, _ in sources:
                partition = catalog.resolve(name)
                if partition is not None:
                    union.insert_many(partition.rows)
            for indexed in self.catalog.get(name).index_names():
                union.create_index(indexed)
            scratch.add_table(union)
        stats = ExecutionStats()
        columns, rows = execute_select(query, scratch.catalog, self.options, stats)
        self.stats.last_shard_stats = [stats]
        self.stats.last_merge_stats = None
        stale = any(is_stale for _, is_stale, _ in sources)
        lag = max((l for _, is_stale, l in sources if is_stale), default=0)
        return ClusterQueryResult(
            columns=columns,
            rows=rows,
            rowcount=len(rows),
            strategy=GATHER,
            shards=[shard.shard_id for shard in self.shards],
            stale=stale,
            stale_lag=lag,
            reason=plan.reason,
        )

    def _execute_explain(self, statement: ExplainQuery) -> QueryResult:
        plan = plan_select(statement.query, self.pmap, self.catalog)
        lines = [f"Cluster: strategy={plan.strategy}"]
        if plan.strategy == SINGLE_SHARD:
            lines[0] += f" shard={plan.target_shard}"
        elif plan.strategy == GATHER:
            lines[0] += f" ({plan.reason})"
        else:
            lines[0] += f" shards={self.num_shards}"
        inner = plan.shard_query if plan.shard_query is not None else statement.query
        lines.extend(
            "  " + line
            for line in explain_plan(inner, self.catalog, self.options)
        )
        if plan.merge_query is not None:
            lines.append(f"  Merge: {plan.merge_query.sql()}")
        return QueryResult(
            columns=["plan"],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
        )

    # -- maintenance / introspection ---------------------------------------
    def compact(self) -> None:
        """Compact every shard (snapshot + WAL reset + replica reseed)."""
        if self._txn is not None:
            raise ClusterError("cannot compact inside a cluster transaction")
        for shard in self.shards:
            shard, _ = self._ensure_live(shard.shard_id)
            try:
                shard.compact()
            except ShardCrashed as crashed:
                self._promote_or_die(shard.shard_id, crashed)

    def replication_lag(self) -> int:
        """Worst current primary→replica lag across shards, in records."""
        return max(shard.replication_lag() for shard in self.shards)

    def table_names(self) -> List[str]:
        return self.catalog.names()

    def state(self) -> Dict:
        """The merged cluster state in canonical (sorted) form."""
        tables = []
        for name in self.catalog.names():
            schema = self.catalog.get(name).schema
            rows: List[List] = []
            for shard in self.shards:
                partition = shard.primary.db.catalog.resolve(name)
                if partition is not None:
                    rows.extend(list(row) for row in partition.rows)
            tables.append(
                {
                    "name": schema.name,
                    "columns": [
                        [c.name, c.sql_type.value] for c in schema.columns
                    ],
                    "rows": rows,
                }
            )
        return canonicalize({"tables": tables})

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        self.coordinator_log.close()
        for shard in self.shards:
            shard.close()
