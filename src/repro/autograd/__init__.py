"""Reverse-mode automatic differentiation over numpy arrays.

This is the numerical substrate for every model in the library: a
:class:`Tensor` records the operations applied to it and :meth:`Tensor.backward`
propagates gradients through the recorded graph. It supports everything a
Transformer needs — batched matmul, broadcasting arithmetic, softmax,
layer normalization, GELU, embedding gather — and is validated against
finite differences in the test suite.
"""

from repro.autograd.tensor import Tensor, no_grad, tensor
from repro.autograd.functional import (
    cross_entropy,
    dropout,
    embedding,
    gelu,
    layer_norm,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    tanh,
    concat,
)

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "layer_norm",
    "embedding",
    "gelu",
    "relu",
    "tanh",
    "sigmoid",
    "dropout",
    "concat",
]
