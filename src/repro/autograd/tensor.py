"""The :class:`Tensor` type: a numpy array with reverse-mode autodiff.

Every differentiable operation builds a node holding a backward closure;
:meth:`Tensor.backward` runs the closures in reverse topological order and
accumulates gradients into ``Tensor.grad``. Broadcasting is handled by
summing gradients over broadcast dimensions (:func:`unbroadcast`).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ShapeError

ArrayLike = Union[np.ndarray, float, int, list, tuple]

# Grad mode is per-thread: the serving gateway decodes on concurrent
# worker threads, and with a process-global flag two overlapping
# ``no_grad`` blocks can interleave their save/restore so that one
# thread's stale snapshot re-disables (or re-enables) grad for every
# other thread. Thread-local state makes ``no_grad`` an isolated,
# race-free property of the calling thread; fresh threads start with
# grad enabled, like the main thread.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph construction (inference mode)."""
    previous = grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return getattr(_GRAD_STATE, "enabled", True)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array plus the bookkeeping needed for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        recording = grad_enabled()
        self.requires_grad = requires_grad and recording
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents = _parents if recording else ()
        self.name = name

    # -- basic introspection ------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    def item(self) -> float:
        """Return the value of a single-element tensor as a float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise ShapeError(f"item() requires a one-element tensor, got shape {self.shape}")

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    # -- graph construction helpers ---------------------------------------
    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor, wiring the backward closure if needed."""
        requires = grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents if requires else ())
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: Union["Tensor", float, int]) -> "Tensor":
        other_t = _as_tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other_t._accumulate(unbroadcast(grad, other_t.shape))

        return self._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", float, int]) -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other: Union[float, int]) -> "Tensor":
        return _as_tensor(other) + (-self)

    def __mul__(self, other: Union["Tensor", float, int]) -> "Tensor":
        other_t = _as_tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad * other_t.data, self.shape))
            other_t._accumulate(unbroadcast(grad * self.data, other_t.shape))

        return self._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", float, int]) -> "Tensor":
        other_t = _as_tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad / other_t.data, self.shape))
            other_t._accumulate(
                unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
            )

        return self._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: Union[float, int]) -> "Tensor":
        return _as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        if self.data.ndim < 1 or other.data.ndim < 1:
            raise ShapeError("matmul requires tensors of rank >= 1")
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(unbroadcast(grad_a, self.shape))
            other._accumulate(unbroadcast(grad_b, other.shape))

        return self._make(out_data, (self, other), backward)

    # -- elementwise functions -------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    # -- reductions -----------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max_along(self, axis: int) -> "Tensor":
        """Max reduction along one axis (gradient flows to the argmax)."""
        out_data = self.data.max(axis=axis)
        argmax = self.data.argmax(axis=axis)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.put_along_axis(
                full, np.expand_dims(argmax, axis), np.expand_dims(grad, axis), axis
            )
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # -- shape manipulation ---------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def __getitem__(self, key: object) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # -- masking / constants -------------------------------------------------
    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor equal to self where ``mask`` is False, else ``value``.

        ``mask`` is a plain boolean numpy array (no gradient flows to it).
        """
        mask_arr = np.asarray(mask, dtype=bool)
        out_data = np.where(mask_arr, value, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(np.where(mask_arr, 0.0, grad), self.shape))

        return self._make(out_data, (self,), backward)

    # -- backprop -----------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        For scalar outputs (losses) ``grad`` defaults to 1; otherwise the
        caller must supply the output gradient.
        """
        if not self.requires_grad:
            raise ShapeError("backward() called on a tensor with requires_grad=False")
        if grad is None:
            if self.data.size != 1:
                raise ShapeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad, dtype=np.float64)}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad.
                node._accumulate(node_grad)
            if node._backward is not None:
                _run_backward(node, node_grad, grads)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None


def _run_backward(
    node: Tensor, node_grad: np.ndarray, grads: dict[int, np.ndarray]
) -> None:
    """Invoke a node's backward closure, collecting parent grads.

    The closures call ``parent._accumulate``; for interior (non-leaf)
    parents we intercept the accumulation into the ``grads`` dict so
    interior tensors don't waste memory on ``.grad`` buffers.
    """
    # Temporarily swap parents' _accumulate targets via the grads dict:
    # the closures call parent._accumulate directly, which writes .grad.
    # For interior nodes we move that into the dict afterwards.
    assert node._backward is not None
    node._backward(node_grad)
    for parent in node._parents:
        if parent._backward is not None and parent.grad is not None:
            # Interior node: move its accumulated grad into the work dict.
            existing = grads.get(id(parent))
            grads[id(parent)] = (
                parent.grad if existing is None else existing + parent.grad
            )
            parent.grad = None
        elif parent._backward is None and parent.grad is not None:
            pass  # leaf: gradient stays in .grad


def _topological_order(root: Tensor) -> List[Tensor]:
    """Return nodes reachable from ``root`` in reverse topological order."""
    order: List[Tensor] = []
    visited: set[int] = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return list(reversed(order))


def _as_tensor(value: Union[Tensor, float, int, np.ndarray]) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(data, requires_grad=requires_grad)
