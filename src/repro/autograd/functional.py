"""Differentiable functions built on :class:`~repro.autograd.tensor.Tensor`.

Ops with simple gradients are composed from tensor primitives; ops on the
hot path of a Transformer (softmax, cross-entropy, embedding) carry
hand-written backward closures for efficiency and numerical stability.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.autograd.tensor import Tensor, grad_enabled

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate((grad - dot) * out_data)

    return x._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z

    def backward(grad: np.ndarray) -> None:
        soft = np.exp(out_data)
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return x._make(out_data, (x,), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Mean cross-entropy of ``logits`` (N, V) against integer ``targets`` (N,).

    Positions where ``targets == ignore_index`` contribute neither loss
    nor gradient (the masked-LM and padded-sequence convention).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects 2-D logits, got {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ShapeError(
            f"targets shape {targets.shape} does not match logits rows {logits.shape[0]}"
        )
    valid = (
        np.ones_like(targets, dtype=bool)
        if ignore_index is None
        else targets != ignore_index
    )
    count = int(valid.sum())
    if count == 0:
        raise ShapeError("cross_entropy: every target position is ignored")

    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    safe_targets = np.where(valid, targets, 0)
    picked = log_probs[np.arange(len(targets)), safe_targets]
    loss_value = -(picked * valid).sum() / count

    def backward(grad: np.ndarray) -> None:
        soft = np.exp(log_probs)
        one_hot = np.zeros_like(soft)
        one_hot[np.arange(len(targets)), safe_targets] = 1.0
        g = (soft - one_hot) * valid[:, None] / count
        logits._accumulate(g * grad)

    return logits._make(np.asarray(loss_value), (logits,), backward)


def layer_norm(
    x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5
) -> Tensor:
    """Layer normalization along the last axis, with learnable scale/shift."""
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered * ((var + eps) ** -0.5)
    return normalized * weight + bias


def embedding(weight: Tensor, ids: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` (V, D) by integer ``ids`` of any shape."""
    ids = np.asarray(ids, dtype=np.int64)
    if ids.min(initial=0) < 0 or (ids.size and ids.max() >= weight.shape[0]):
        raise ShapeError(
            f"embedding ids out of range [0, {weight.shape[0]}): "
            f"min={ids.min()}, max={ids.max()}"
        )
    out_data = weight.data[ids]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, ids.reshape(-1), grad.reshape(-1, weight.shape[1]))
        weight._accumulate(full)

    return weight._make(out_data, (weight,), backward)


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (1.0 - out_data**2))

    return x._make(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid."""
    out_data = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * out_data * (1.0 - out_data))

    return x._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    mask = x.data > 0
    out_data = np.where(mask, x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(np.where(mask, grad, 0.0))

    return x._make(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """GELU activation (tanh approximation, as used by BERT and GPT)."""
    u = x.data + 0.044715 * x.data**3
    t = np.tanh(_SQRT_2_OVER_PI * u)
    out_data = 0.5 * x.data * (1.0 + t)

    def backward(grad: np.ndarray) -> None:
        du = 1.0 + 3 * 0.044715 * x.data**2
        dt = (1.0 - t**2) * _SQRT_2_OVER_PI * du
        x._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x.data * dt))

    return x._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: zero elements with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ShapeError(f"dropout probability must be in [0, 1), got {p}")
    keep = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(keep)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    if not tensors:
        raise ShapeError("concat requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            piece = np.moveaxis(moved[start:end], 0, axis)
            t._accumulate(piece)

    return tensors[0]._make(out_data, tuple(tensors), backward)
