"""Evaluate a NeuralDatabase against its world's ground truth."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.neuraldb.facts import FactWorld
from repro.neuraldb.store import NeuralDatabase


@dataclass
class NeuralDBReport:
    """Accuracy per query family."""

    lookup_accuracy: float = 0.0
    count_accuracy: float = 0.0
    join_accuracy: float = 0.0

    def overall(self) -> float:
        return (self.lookup_accuracy + self.count_accuracy + self.join_accuracy) / 3


def evaluate_neuraldb(ndb: NeuralDatabase, world: FactWorld) -> NeuralDBReport:
    """Score lookup, count, and join queries against ground truth.

    Lookup and join queries run through the store's batch entry points,
    so each query family is a handful of batched decodes rather than a
    per-person generation loop.
    """
    people = world.people
    lookup_outcomes = ndb.lookup_batch(
        [f"where does {person} work ?" for person in people]
    )
    lookup_hits = sum(
        int(str(outcome.answer) == world.works_in[person])
        for person, outcome in zip(people, lookup_outcomes)
    )

    count_hits = 0
    for dept in world.departments:
        outcome = ndb.count_department(dept)
        count_hits += int(outcome.answer == world.count_in_department(dept))

    join_outcomes = ndb.join_lookup_batch(people)
    join_hits = sum(
        int(str(outcome.answer) == world.building_of_person(person))
        for person, outcome in zip(people, join_outcomes)
    )

    return NeuralDBReport(
        lookup_accuracy=lookup_hits / len(world.works_in),
        count_accuracy=count_hits / len(world.departments),
        join_accuracy=join_hits / len(world.people),
    )
