"""Evaluate a NeuralDatabase against its world's ground truth."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.neuraldb.facts import FactWorld
from repro.neuraldb.store import NeuralDatabase


@dataclass
class NeuralDBReport:
    """Accuracy per query family."""

    lookup_accuracy: float = 0.0
    count_accuracy: float = 0.0
    join_accuracy: float = 0.0

    def overall(self) -> float:
        return (self.lookup_accuracy + self.count_accuracy + self.join_accuracy) / 3


def evaluate_neuraldb(ndb: NeuralDatabase, world: FactWorld) -> NeuralDBReport:
    """Score lookup, count, and join queries against ground truth."""
    lookup_hits = 0
    for person, dept in world.works_in.items():
        outcome = ndb.lookup(f"where does {person} work ?")
        lookup_hits += int(str(outcome.answer) == dept)

    count_hits = 0
    for dept in world.departments:
        outcome = ndb.count_department(dept)
        count_hits += int(outcome.answer == world.count_in_department(dept))

    join_hits = 0
    for person in world.people:
        outcome = ndb.join_lookup(person)
        join_hits += int(str(outcome.answer) == world.building_of_person(person))

    return NeuralDBReport(
        lookup_accuracy=lookup_hits / len(world.works_in),
        count_accuracy=count_hits / len(world.departments),
        join_accuracy=join_hits / len(world.people),
    )
