"""Fact retrieval: lexical overlap baseline vs neural embedding index."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NeuralDBError
from repro.models import BERTModel, ModelConfig
from repro.tokenizers import WhitespaceTokenizer
from repro.training import pretrain_mlm
from repro.utils.text import jaccard


class LexicalRetriever:
    """Rank facts by word-overlap with the query."""

    def __init__(self, facts: Sequence[str]) -> None:
        if not facts:
            raise NeuralDBError("cannot index zero facts")
        self.facts = list(facts)

    def retrieve(self, query: str, top_k: int = 3) -> List[Tuple[str, float]]:
        scored = [(fact, jaccard(query, fact)) for fact in self.facts]
        scored.sort(key=lambda pair: -pair[1])
        return scored[:top_k]


class EmbeddingRetriever:
    """Dense retrieval over a BERT encoder pre-trained on the fact store.

    The encoder is MLM-pretrained on the facts themselves (no labels),
    then every fact is embedded once; queries embed at ask time and rank
    by cosine similarity.
    """

    # Generic question phrasings, added to the tokenizer's training text
    # so that query words are in-vocabulary at ask time.
    QUESTION_PHRASES = [
        "where does work ?",
        "where is located ?",
        "who works in ?",
    ]

    def __init__(
        self,
        facts: Sequence[str],
        pretrain_steps: int = 60,
        dim: int = 32,
        seed: int = 0,
    ) -> None:
        if not facts:
            raise NeuralDBError("cannot index zero facts")
        self.facts = list(facts)
        self.tokenizer = WhitespaceTokenizer(lowercase=True)
        self.tokenizer.train(list(self.facts) + self.QUESTION_PHRASES, vocab_size=1024)
        max_len = max(len(self.tokenizer.encode(f).ids) for f in self.facts) + 4

        config = ModelConfig(
            vocab_size=self.tokenizer.vocab_size,
            max_seq_len=max_len,
            dim=dim,
            num_layers=2,
            num_heads=2,
            ff_dim=4 * dim,
            causal=False,
        )
        self.encoder = BERTModel(config, seed=seed)
        pretrain_mlm(
            self.encoder, self.tokenizer, self.facts,
            steps=pretrain_steps, seq_len=min(max_len, 24), seed=seed,
        )
        self._max_len = max_len
        self._index = self._embed(self.facts)

    def _embed(self, texts: Sequence[str]) -> np.ndarray:
        encodings = [
            self.tokenizer.encode(t, max_length=self._max_len, pad_to=self._max_len)
            for t in texts
        ]
        ids = np.array([e.ids for e in encodings], dtype=np.int64)
        mask = np.array([e.attention_mask for e in encodings], dtype=np.int64)
        # Unknown words carry no signal; keep them out of the pooled
        # representation so rare queries aren't dominated by [UNK].
        unk = self.tokenizer.vocab.unk_id
        informative = mask & (ids != unk)
        informative[informative.sum(axis=1) == 0] = mask[informative.sum(axis=1) == 0]
        vectors = self.encoder.embed_texts(ids, informative)
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        return vectors / np.maximum(norms, 1e-9)

    def retrieve(self, query: str, top_k: int = 3) -> List[Tuple[str, float]]:
        query_vec = self._embed([query])[0]
        similarities = self._index @ query_vec
        order = np.argsort(-similarities)[:top_k]
        return [(self.facts[i], float(similarities[i])) for i in order]

    # -- contrastive fine-tuning (DPR-style) ---------------------------------
    def train_contrastive(
        self,
        qa_pairs: Sequence[Tuple[str, str]],
        steps: int = 120,
        batch_size: int = 12,
        lr: float = 2e-3,
        seed: int = 0,
    ) -> "EmbeddingRetriever":
        """Fine-tune the encoder on (question, matching fact) pairs.

        In-batch negatives with an InfoNCE objective — the dual-encoder
        recipe dense retrievers (and NeuralDB's support-set retriever)
        are trained with. Afterwards the fact index is rebuilt.
        """
        if not qa_pairs:
            raise NeuralDBError("no training pairs")
        from repro.autograd import Tensor, cross_entropy
        from repro.training.optim import AdamW
        from repro.utils.rng import SeededRNG

        questions = [q for q, _ in qa_pairs]
        positives = [f for _, f in qa_pairs]
        q_ids, q_mask = self._encode_batch(questions)
        f_ids, f_mask = self._encode_batch(positives)

        optimizer = AdamW(self.encoder.parameters(), lr=lr)
        rng = SeededRNG(seed)
        n = len(qa_pairs)
        self.encoder.train()
        for _ in range(steps):
            idx = rng.generator.choice(n, size=min(batch_size, n), replace=False)
            q_vec = self._pooled_normalized(q_ids[idx], q_mask[idx])
            f_vec = self._pooled_normalized(f_ids[idx], f_mask[idx])
            logits = (q_vec @ f_vec.transpose(1, 0)) * 10.0  # temperature 0.1
            targets = np.arange(len(idx))
            loss = cross_entropy(logits, targets)
            optimizer.zero_grad()
            loss.backward()
            optimizer.clip_grad_norm(1.0)
            optimizer.step()
        self.encoder.eval()
        self._index = self._embed(self.facts)
        return self

    def _encode_batch(self, texts: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        encodings = [
            self.tokenizer.encode(t, max_length=self._max_len, pad_to=self._max_len)
            for t in texts
        ]
        ids = np.array([e.ids for e in encodings], dtype=np.int64)
        mask = np.array([e.attention_mask for e in encodings], dtype=np.int64)
        unk = self.tokenizer.vocab.unk_id
        informative = mask & (ids != unk)
        empty = informative.sum(axis=1) == 0
        informative[empty] = mask[empty]
        return ids, informative

    def _pooled_normalized(self, ids: np.ndarray, mask: np.ndarray):
        pooled = self.encoder.pooled(ids, mask)
        sumsq = (pooled * pooled).sum(axis=-1, keepdims=True)
        return pooled * ((sumsq + 1e-9) ** -0.5)
