"""Fact retrieval: lexical overlap baseline vs neural embedding index.

The :class:`EmbeddingRetriever` scales to corpus-size fact stores
(10^5+) with three mechanisms:

* **Two-stage retrieval.** An :class:`~repro.neuraldb.index.InvertedIndex`
  proposes a candidate set from token postings; only those candidates
  are scored against the query embedding. ``mode="auto"`` keeps the
  exact dense scan for small stores (at or below ``dense_cutoff``
  facts, where a scan is cheaper than it is wrong) and switches to
  two-stage above it. Queries matching no postings fall back to dense.
* **Incremental maintenance.** ``add_fact`` embeds exactly the one new
  fact into a capacity-doubling row matrix; ``remove_fact`` tombstones
  its row and drops its postings. Neither re-embeds the corpus.
* **Blocked embedding.** Index builds run the encoder in
  ``embed_block``-sized batches, so a 10^5-fact build never
  materializes one corpus-sized activation tensor.

:class:`RetrieverStats` counts embedded texts and scored rows so tests
and benchmarks can assert the work actually done, not just timings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NeuralDBError
from repro.models import BERTModel, ModelConfig
from repro.neuraldb.index import InvertedIndex
from repro.tokenizers import WhitespaceTokenizer
from repro.training import pretrain_mlm
from repro.utils.text import jaccard


@dataclass
class RetrieverStats:
    """Work counters for one :class:`EmbeddingRetriever`."""

    queries: int = 0
    dense_queries: int = 0
    two_stage_queries: int = 0
    dense_fallbacks: int = 0
    #: rows scored against a query embedding (the per-query work)
    facts_scored: int = 0
    #: texts run through the encoder (builds + mutations + queries)
    embedded_texts: int = 0


class LexicalRetriever:
    """Rank facts by word-overlap with the query."""

    def __init__(self, facts: Sequence[str]) -> None:
        if not facts:
            raise NeuralDBError("cannot index zero facts")
        self.facts = list(facts)

    def add_fact(self, fact: str) -> None:
        self.facts.append(fact)

    def remove_fact(self, fact: str) -> None:
        try:
            self.facts.remove(fact)
        except ValueError:
            raise NeuralDBError(f"fact not stored: {fact!r}") from None

    def retrieve(self, query: str, top_k: int = 3) -> List[Tuple[str, float]]:
        scored = [(fact, jaccard(query, fact)) for fact in self.facts]
        scored.sort(key=lambda pair: -pair[1])
        return scored[:top_k]


class EmbeddingRetriever:
    """Dense retrieval over a BERT encoder pre-trained on the fact store.

    The encoder is MLM-pretrained on the facts themselves (no labels),
    then every fact is embedded once; queries embed at ask time and rank
    by cosine similarity — exhaustively for small stores, over inverted-
    index candidates for large ones (see the module docstring).

    ``vocab_size`` bounds the tokenizer vocabulary and
    ``pretrain_sample`` caps how many facts the tokenizer/MLM stages
    see (an evenly strided, deterministic sample) — both matter only at
    corpus scale, where training on every fact would dominate build
    time without improving a 2-layer encoder.
    """

    # Generic question phrasings, added to the tokenizer's training text
    # so that query words are in-vocabulary at ask time.
    QUESTION_PHRASES = [
        "where does work ?",
        "where is located ?",
        "who works in ?",
    ]

    def __init__(
        self,
        facts: Sequence[str],
        pretrain_steps: int = 60,
        dim: int = 32,
        seed: int = 0,
        vocab_size: int = 1024,
        pretrain_sample: Optional[int] = None,
        embed_block: int = 256,
        dense_cutoff: int = 512,
    ) -> None:
        if not facts:
            raise NeuralDBError("cannot index zero facts")
        if embed_block <= 0:
            raise NeuralDBError("embed_block must be positive")
        self.facts = list(facts)
        self.embed_block = embed_block
        self.dense_cutoff = dense_cutoff
        self.stats = RetrieverStats()
        sample = self._training_sample(self.facts, pretrain_sample)
        self.tokenizer = WhitespaceTokenizer(lowercase=True)
        self.tokenizer.train(sample + self.QUESTION_PHRASES, vocab_size=vocab_size)
        max_len = max(len(self.tokenizer.encode(f).ids) for f in sample) + 4

        config = ModelConfig(
            vocab_size=self.tokenizer.vocab_size,
            max_seq_len=max_len,
            dim=dim,
            num_layers=2,
            num_heads=2,
            ff_dim=4 * dim,
            causal=False,
        )
        self.encoder = BERTModel(config, seed=seed)
        pretrain_mlm(
            self.encoder, self.tokenizer, sample,
            steps=pretrain_steps, seq_len=min(max_len, 24), seed=seed,
        )
        self._max_len = max_len
        self._dim = dim
        self._rebuild_index()

    @staticmethod
    def _training_sample(facts: List[str], cap: Optional[int]) -> List[str]:
        """Evenly strided corpus sample — deterministic, covers the span."""
        if cap is None or cap >= len(facts):
            return list(facts)
        if cap <= 0:
            raise NeuralDBError("pretrain_sample must be positive")
        stride = max(1, len(facts) // cap)
        return facts[::stride][:cap]

    # -- index maintenance ---------------------------------------------------
    def _rebuild_index(self) -> None:
        """Re-embed every fact and rebuild postings (build-time only)."""
        vectors = self._embed(self.facts)
        capacity = max(1, len(self.facts))
        self._matrix = np.zeros((capacity, vectors.shape[1]))
        self._matrix[: len(self.facts)] = vectors
        self._alive = np.zeros(capacity, dtype=bool)
        self._alive[: len(self.facts)] = True
        self._used = len(self.facts)
        self._row_fact: List[Optional[str]] = list(self.facts)
        self._rows_by_fact: dict = {}
        self._iindex = InvertedIndex()
        for row, fact in enumerate(self.facts):
            self._rows_by_fact.setdefault(fact, []).append(row)
            self._iindex.add(row, fact)

    def add_fact(self, fact: str) -> None:
        """Insert one fact: embed it alone, index its own tokens — O(1)
        encoder forwards regardless of corpus size."""
        vector = self._embed([fact])[0]
        if self._used == self._matrix.shape[0]:
            grown = np.zeros((2 * self._matrix.shape[0], self._matrix.shape[1]))
            grown[: self._used] = self._matrix[: self._used]
            self._matrix = grown
            alive = np.zeros(grown.shape[0], dtype=bool)
            alive[: self._used] = self._alive[: self._used]
            self._alive = alive
        row = self._used
        self._matrix[row] = vector
        self._alive[row] = True
        self._used += 1
        self._row_fact.append(fact)
        self._rows_by_fact.setdefault(fact, []).append(row)
        self._iindex.add(row, fact)
        self.facts.append(fact)

    def remove_fact(self, fact: str) -> None:
        """Delete one stored copy of ``fact`` by tombstoning its row."""
        rows = self._rows_by_fact.get(fact)
        if not rows:
            raise NeuralDBError(f"fact not stored: {fact!r}")
        row = rows.pop(0)
        if not rows:
            del self._rows_by_fact[fact]
        self._alive[row] = False
        self._row_fact[row] = None
        self._iindex.remove(row)
        self.facts.remove(fact)

    # -- embedding -----------------------------------------------------------
    def _embed(self, texts: Sequence[str]) -> np.ndarray:
        """Normalized pooled embeddings, in ``embed_block``-sized batches."""
        blocks = [
            self._embed_block(texts[start : start + self.embed_block])
            for start in range(0, len(texts), self.embed_block)
        ]
        self.stats.embedded_texts += len(texts)
        return blocks[0] if len(blocks) == 1 else np.vstack(blocks)

    def _embed_block(self, texts: Sequence[str]) -> np.ndarray:
        encodings = [
            self.tokenizer.encode(t, max_length=self._max_len, pad_to=self._max_len)
            for t in texts
        ]
        ids = np.array([e.ids for e in encodings], dtype=np.int64)
        mask = np.array([e.attention_mask for e in encodings], dtype=np.int64)
        # Unknown words carry no signal; keep them out of the pooled
        # representation so rare queries aren't dominated by [UNK].
        unk = self.tokenizer.vocab.unk_id
        informative = mask & (ids != unk)
        empty = informative.sum(axis=1) == 0
        informative[empty] = mask[empty]
        vectors = self.encoder.embed_texts(ids, informative)
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        return vectors / np.maximum(norms, 1e-9)

    # -- retrieval -----------------------------------------------------------
    def retrieve(
        self,
        query: str,
        top_k: int = 3,
        mode: str = "auto",
        candidate_limit: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """Top-``top_k`` facts by cosine similarity to ``query``.

        ``mode="dense"`` scores every live fact (exact), ``"two_stage"``
        scores inverted-index candidates only, ``"auto"`` picks dense at
        or below ``dense_cutoff`` facts and two-stage above. A two-stage
        query whose tokens match no postings falls back to dense rather
        than returning nothing. Ties break toward earlier insertion.
        """
        if mode not in ("auto", "dense", "two_stage"):
            raise NeuralDBError(f"unknown retrieval mode {mode!r}")
        self.stats.queries += 1
        query_vec = self._embed([query])[0]
        if mode == "auto":
            mode = "dense" if len(self.facts) <= self.dense_cutoff else "two_stage"
        rows: Optional[np.ndarray] = None
        if mode == "two_stage":
            candidates = self._iindex.candidates(query, limit=candidate_limit)
            if candidates:
                self.stats.two_stage_queries += 1
                rows = np.array(candidates, dtype=np.int64)
            else:
                self.stats.dense_fallbacks += 1
        if rows is None:
            self.stats.dense_queries += 1
            rows = np.flatnonzero(self._alive[: self._used])
        similarities = self._matrix[rows] @ query_vec
        self.stats.facts_scored += len(rows)
        order = np.argsort(-similarities, kind="stable")[:top_k]
        return [
            (self._row_fact[rows[i]], float(similarities[i])) for i in order
        ]

    # -- contrastive fine-tuning (DPR-style) ---------------------------------
    def train_contrastive(
        self,
        qa_pairs: Sequence[Tuple[str, str]],
        steps: int = 120,
        batch_size: int = 12,
        lr: float = 2e-3,
        seed: int = 0,
    ) -> "EmbeddingRetriever":
        """Fine-tune the encoder on (question, matching fact) pairs.

        In-batch negatives with an InfoNCE objective — the dual-encoder
        recipe dense retrievers (and NeuralDB's support-set retriever)
        are trained with. Afterwards the fact index is rebuilt (the
        encoder changed, so every stored embedding is stale).
        """
        if not qa_pairs:
            raise NeuralDBError("no training pairs")
        from repro.autograd import Tensor, cross_entropy
        from repro.training.optim import AdamW
        from repro.utils.rng import SeededRNG

        questions = [q for q, _ in qa_pairs]
        positives = [f for _, f in qa_pairs]
        q_ids, q_mask = self._encode_batch(questions)
        f_ids, f_mask = self._encode_batch(positives)

        optimizer = AdamW(self.encoder.parameters(), lr=lr)
        rng = SeededRNG(seed)
        n = len(qa_pairs)
        self.encoder.train()
        for _ in range(steps):
            idx = rng.generator.choice(n, size=min(batch_size, n), replace=False)
            q_vec = self._pooled_normalized(q_ids[idx], q_mask[idx])
            f_vec = self._pooled_normalized(f_ids[idx], f_mask[idx])
            logits = (q_vec @ f_vec.transpose(1, 0)) * 10.0  # temperature 0.1
            targets = np.arange(len(idx))
            loss = cross_entropy(logits, targets)
            optimizer.zero_grad()
            loss.backward()
            optimizer.clip_grad_norm(1.0)
            optimizer.step()
        self.encoder.eval()
        self._rebuild_index()
        return self

    def _encode_batch(self, texts: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        encodings = [
            self.tokenizer.encode(t, max_length=self._max_len, pad_to=self._max_len)
            for t in texts
        ]
        ids = np.array([e.ids for e in encodings], dtype=np.int64)
        mask = np.array([e.attention_mask for e in encodings], dtype=np.int64)
        unk = self.tokenizer.vocab.unk_id
        informative = mask & (ids != unk)
        empty = informative.sum(axis=1) == 0
        informative[empty] = mask[empty]
        return ids, informative

    def _pooled_normalized(self, ids: np.ndarray, mask: np.ndarray):
        pooled = self.encoder.pooled(ids, mask)
        sumsq = (pooled * pooled).sum(axis=-1, keepdims=True)
        return pooled * ((sumsq + 1e-9) ** -0.5)
