"""The NeuralDatabase: retrieval + reader + aggregation operators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import NeuralDBError
from repro.neuraldb.reader import NeuralReader
from repro.neuraldb.retriever import EmbeddingRetriever, LexicalRetriever

Retriever = Union[LexicalRetriever, EmbeddingRetriever]


@dataclass
class QueryOutcome:
    """An answer plus the provenance NeuralDB exposes."""

    answer: Union[str, int]
    supporting_facts: List[str] = field(default_factory=list)


class NeuralDatabase:
    """Facts in, natural-language queries out — no schema anywhere.

    Three operator types cover the query families of the NeuralDB paper
    at our scale:

    * :meth:`lookup` — single-fact answer extraction;
    * :meth:`count` — aggregate over per-fact reader outputs;
    * :meth:`join_lookup` — two-hop composition (person -> department ->
      building) through intermediate answers.

    Scan operators (:meth:`count`, :meth:`count_department`) and the
    batch entry points (:meth:`lookup_batch`, :meth:`join_lookup_batch`)
    run every per-fact reader prompt through one batched decode
    (:meth:`~repro.neuraldb.reader.NeuralReader.read_batch`) instead of
    a per-fact generation loop. Mutations are delegated to the
    retriever's incremental index — inserting a fact embeds that fact
    alone, never the corpus.
    """

    def __init__(self, retriever: Retriever, reader: NeuralReader) -> None:
        self.retriever = retriever
        self.reader = reader

    @property
    def facts(self) -> List[str]:
        return list(self.retriever.facts)

    # -- mutations (NeuralDB supports inserts/deletes of facts) -------------
    def add_fact(self, fact: str) -> None:
        """Insert one NL fact and index it incrementally."""
        if not fact.strip():
            raise NeuralDBError("cannot store an empty fact")
        self.retriever.add_fact(fact)

    def remove_fact(self, fact: str) -> None:
        """Delete one NL fact (exact match); its index entry tombstones."""
        if fact not in self.retriever.facts:
            raise NeuralDBError(f"fact not stored: {fact!r}")
        if len(self.retriever.facts) == 1:
            raise NeuralDBError("cannot remove the last fact of the store")
        self.retriever.remove_fact(fact)

    def _read_many(self, items: Sequence[Tuple[str, str]]) -> List[str]:
        """Answer every ``(fact, question)`` pair, batched when possible.

        Readers exposing ``read_batch`` decode all prompts in one
        scheduler pass; stub readers without it fall back to a
        per-pair loop — mirroring :func:`repro.serving.complete_many`.
        """
        batch = getattr(self.reader, "read_batch", None)
        if batch is not None:
            return list(batch(items))
        # The designated fallback loop for batchless stub readers:
        return [self.reader.read(f, q) for f, q in items]  # repro: noqa[per-prompt-loop]

    # -- operators ----------------------------------------------------------
    def lookup(self, question: str, top_k: int = 2) -> QueryOutcome:
        """Answer from the single best-supported fact."""
        return self.lookup_batch([question], top_k=top_k)[0]

    def lookup_batch(
        self, questions: Sequence[str], top_k: int = 2
    ) -> List[QueryOutcome]:
        """One :meth:`lookup` per question, read in one batched decode."""
        if not questions:
            return []
        hits_per_question = [
            self.retriever.retrieve(question, top_k=top_k)
            for question in questions
        ]
        for hits in hits_per_question:
            if not hits:
                raise NeuralDBError("retriever returned no facts")
        answers = self._read_many(
            [
                (hits[0][0], question)
                for hits, question in zip(hits_per_question, questions)
            ]
        )
        return [
            QueryOutcome(answer=answer, supporting_facts=[h[0] for h in hits])
            for answer, hits in zip(answers, hits_per_question)
        ]

    def count(self, entity: str, question_of_fact: str, expected: str) -> QueryOutcome:
        """Count facts whose per-fact answer equals ``expected``.

        ``question_of_fact`` is asked against *every* fact (the scan is
        NeuralDB's parallelizable select — one batched decode here);
        facts answering ``expected`` are tallied. ``entity`` is only
        used to phrase provenance.
        """
        facts = self.retriever.facts
        answers = self._read_many(
            [(fact, question_of_fact.format(fact=fact)) for fact in facts]
        )
        supporting = [
            fact for fact, answer in zip(facts, answers) if answer == expected
        ]
        return QueryOutcome(answer=len(supporting), supporting_facts=supporting)

    def count_department(self, dept: str) -> QueryOutcome:
        """How many people work in ``dept``? (a canonical count query)."""
        person_facts = [
            fact
            for fact in self.retriever.facts
            # location facts describe departments, not people
            if "located" not in fact and "sits" not in fact
        ]
        answers = self._read_many(
            [(fact, "where does this person work ?") for fact in person_facts]
        )
        supporting = [
            fact for fact, answer in zip(person_facts, answers) if answer == dept
        ]
        return QueryOutcome(answer=len(supporting), supporting_facts=supporting)

    def join_lookup(self, person: str) -> QueryOutcome:
        """Which building does ``person`` work in? (two-hop join)."""
        return self.join_lookup_batch([person])[0]

    def join_lookup_batch(self, persons: Sequence[str]) -> List[QueryOutcome]:
        """Two-hop joins, each hop one batched decode across persons."""
        if not persons:
            return []
        first = self.lookup_batch(
            [f"where does {person} work ?" for person in persons]
        )
        second = self.lookup_batch(
            [f"where is {outcome.answer} located ?" for outcome in first]
        )
        return [
            QueryOutcome(
                answer=hop2.answer,
                supporting_facts=(
                    hop1.supporting_facts[:1] + hop2.supporting_facts[:1]
                ),
            )
            for hop1, hop2 in zip(first, second)
        ]
