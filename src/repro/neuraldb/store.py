"""The NeuralDatabase: retrieval + reader + aggregation operators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.errors import NeuralDBError
from repro.neuraldb.reader import NeuralReader
from repro.neuraldb.retriever import EmbeddingRetriever, LexicalRetriever

Retriever = Union[LexicalRetriever, EmbeddingRetriever]


@dataclass
class QueryOutcome:
    """An answer plus the provenance NeuralDB exposes."""

    answer: Union[str, int]
    supporting_facts: List[str] = field(default_factory=list)


class NeuralDatabase:
    """Facts in, natural-language queries out — no schema anywhere.

    Three operator types cover the query families of the NeuralDB paper
    at our scale:

    * :meth:`lookup` — single-fact answer extraction;
    * :meth:`count` — aggregate over per-fact reader outputs;
    * :meth:`join_lookup` — two-hop composition (person -> department ->
      building) through intermediate answers.
    """

    def __init__(self, retriever: Retriever, reader: NeuralReader) -> None:
        self.retriever = retriever
        self.reader = reader

    @property
    def facts(self) -> List[str]:
        return list(self.retriever.facts)

    # -- mutations (NeuralDB supports inserts/deletes of facts) -------------
    def add_fact(self, fact: str) -> None:
        """Insert one NL fact and refresh the retrieval index."""
        if not fact.strip():
            raise NeuralDBError("cannot store an empty fact")
        self.retriever.facts.append(fact)
        self._reindex()

    def remove_fact(self, fact: str) -> None:
        """Delete one NL fact (exact match) and refresh the index."""
        try:
            self.retriever.facts.remove(fact)
        except ValueError:
            raise NeuralDBError(f"fact not stored: {fact!r}") from None
        if not self.retriever.facts:
            raise NeuralDBError("cannot remove the last fact of the store")
        self._reindex()

    def _reindex(self) -> None:
        if isinstance(self.retriever, EmbeddingRetriever):
            self.retriever._index = self.retriever._embed(self.retriever.facts)

    def lookup(self, question: str, top_k: int = 2) -> QueryOutcome:
        """Answer from the single best-supported fact."""
        hits = self.retriever.retrieve(question, top_k=top_k)
        if not hits:
            raise NeuralDBError("retriever returned no facts")
        best_fact = hits[0][0]
        answer = self.reader.read(best_fact, question)
        return QueryOutcome(answer=answer, supporting_facts=[h[0] for h in hits])

    def count(self, entity: str, question_of_fact: str, expected: str) -> QueryOutcome:
        """Count facts whose per-fact answer equals ``expected``.

        ``question_of_fact`` is asked against *every* fact (the scan is
        NeuralDB's parallelizable select); facts answering ``expected``
        are tallied. ``entity`` is only used to phrase provenance.
        """
        supporting: List[str] = []
        for fact in self.retriever.facts:
            answer = self.reader.read(fact, question_of_fact.format(fact=fact))
            if answer == expected:
                supporting.append(fact)
        return QueryOutcome(answer=len(supporting), supporting_facts=supporting)

    def count_department(self, dept: str) -> QueryOutcome:
        """How many people work in ``dept``? (a canonical count query)."""
        supporting: List[str] = []
        for fact in self.retriever.facts:
            if "located" in fact or "sits" in fact:
                continue  # location facts describe departments, not people
            answer = self.reader.read(fact, "where does this person work ?")
            if answer == dept:
                supporting.append(fact)
        return QueryOutcome(answer=len(supporting), supporting_facts=supporting)

    def join_lookup(self, person: str) -> QueryOutcome:
        """Which building does ``person`` work in? (two-hop join)."""
        first = self.lookup(f"where does {person} work ?")
        dept = str(first.answer)
        second = self.lookup(f"where is {dept} located ?")
        return QueryOutcome(
            answer=second.answer,
            supporting_facts=first.supporting_facts[:1] + second.supporting_facts[:1],
        )
