"""Synthetic fact worlds: people, departments, buildings — as sentences."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.utils.rng import SeededRNG

_PEOPLE = ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
           "ivan", "judy", "kevin", "laura", "mike", "nina", "oscar", "paula"]
_DEPARTMENTS = ["engineering", "sales", "marketing", "finance"]
_BUILDINGS = ["tower", "annex", "plaza", "lab"]

_WORK_TEMPLATES = [
    "{person} works in {dept} .",
    "{person} is a member of the {dept} team .",
    "{person} belongs to {dept} .",
]
_LOCATION_TEMPLATES = [
    "{dept} is located in the {building} .",
    "the {dept} team sits in the {building} .",
]


@dataclass
class FactWorld:
    """Ground truth plus the NL fact sentences derived from it."""

    works_in: Dict[str, str] = field(default_factory=dict)      # person -> dept
    located_in: Dict[str, str] = field(default_factory=dict)    # dept -> building
    facts: List[str] = field(default_factory=list)

    @property
    def people(self) -> List[str]:
        return sorted(self.works_in)

    @property
    def departments(self) -> List[str]:
        return sorted(self.located_in)

    def count_in_department(self, dept: str) -> int:
        return sum(1 for d in self.works_in.values() if d == dept)

    def building_of_person(self, person: str) -> str:
        return self.located_in[self.works_in[person]]


def generate_fact_world(
    num_people: int = 12,
    seed: int = 0,
    num_departments: int = 4,
    num_buildings: int = 4,
) -> FactWorld:
    """Sample a world and render every relation as one NL sentence.

    ``num_departments``/``num_buildings`` grow past the named lists
    with synthetic entities (``dept7``, ``building9``) so corpus-scale
    worlds (10^5+ facts) keep distinct, retrievable entity names. The
    defaults reproduce the original named world byte-for-byte under a
    given seed.
    """
    if num_people <= 0 or num_departments <= 0 or num_buildings <= 0:
        raise ValueError("world dimensions must be positive")
    rng = SeededRNG(seed)
    world = FactWorld()
    people = _PEOPLE[:num_people]
    if num_people > len(_PEOPLE):
        people = people + [f"person{i}" for i in range(num_people - len(_PEOPLE))]
    departments = _DEPARTMENTS[:num_departments]
    if num_departments > len(_DEPARTMENTS):
        departments = departments + [
            f"dept{i}" for i in range(num_departments - len(_DEPARTMENTS))
        ]
    buildings = _BUILDINGS[:num_buildings]
    if num_buildings > len(_BUILDINGS):
        buildings = buildings + [
            f"building{i}" for i in range(num_buildings - len(_BUILDINGS))
        ]
    for person in people:
        world.works_in[person] = rng.choice(departments)
    shuffled = rng.shuffled(buildings)
    for i, dept in enumerate(departments):
        world.located_in[dept] = shuffled[i % len(shuffled)]

    for person, dept in world.works_in.items():
        template = rng.choice(_WORK_TEMPLATES)
        world.facts.append(template.format(person=person, dept=dept))
    for dept, building in world.located_in.items():
        template = rng.choice(_LOCATION_TEMPLATES)
        world.facts.append(template.format(dept=dept, building=building))
    world.facts = rng.shuffled(world.facts)
    return world


def contrastive_pairs(seed: int = 0, num_worlds: int = 5) -> List[Tuple[str, str]]:
    """(question, matching fact) pairs for dual-encoder retriever training.

    Drawn from independent worlds so the retriever learns the
    question-to-fact alignment pattern, not one world's assignments.
    """
    pairs: List[Tuple[str, str]] = []
    for w in range(num_worlds):
        rng = SeededRNG(seed * 900 + w)
        world = generate_fact_world(num_people=10, seed=seed * 900 + w + 31)
        for person, dept in world.works_in.items():
            fact = rng.choice(_WORK_TEMPLATES).format(person=person, dept=dept)
            pairs.append((f"where does {person} work ?", fact))
        for dept, building in world.located_in.items():
            fact = rng.choice(_LOCATION_TEMPLATES).format(dept=dept, building=building)
            pairs.append((f"where is {dept} located ?", fact))
    return pairs


def training_qa_pairs(seed: int = 0, num_worlds: int = 6) -> List[Tuple[str, str, str]]:
    """(fact, question, answer) triples for reader training.

    Sampled from several independent worlds so the reader learns the
    template semantics, not one world's specific assignments.
    """
    triples: List[Tuple[str, str, str]] = []
    for w in range(num_worlds):
        rng = SeededRNG(seed * 1000 + w)
        world = generate_fact_world(num_people=10, seed=seed * 1000 + w + 17)
        for person, dept in world.works_in.items():
            fact = rng.choice(_WORK_TEMPLATES).format(person=person, dept=dept)
            triples.append((fact, f"where does {person} work ?", dept))
            # The generic phrasing used by the count operator's scan.
            triples.append((fact, "where does this person work ?", dept))
        for dept, building in world.located_in.items():
            fact = rng.choice(_LOCATION_TEMPLATES).format(dept=dept, building=building)
            triples.append((fact, f"where is {dept} located ?", building))
    return triples
