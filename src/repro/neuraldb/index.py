"""Inverted index over tokenized facts: the candidate generator.

Corpus-scale retrieval cannot afford a dense scan per query, so the
:class:`~repro.neuraldb.retriever.EmbeddingRetriever` composes two
stages: this index proposes a small candidate set from token postings,
then the embedding stage scores only those candidates. The index is
purely lexical — postings map each (lowercased, whitespace) token to
the document ids containing it — which is exactly what makes it cheap
to maintain incrementally: adding or removing one fact touches only
that fact's own tokens.

Candidate scoring is idf-weighted token overlap,
``idf = log(1 + N / df)``, so a query term appearing in three facts
out-votes one appearing in thousands. Query tokens whose document
frequency exceeds ``max_df_fraction`` of the corpus (the "works",
"where", "the" class) are skipped as stopwords — unless *every* query
token is that common, in which case they are all kept rather than
returning nothing. Ordering is deterministic: ``(-score, doc_id)``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import NeuralDBError
from repro.utils.text import simple_word_tokenize


class InvertedIndex:
    """Token postings over documents keyed by integer ids."""

    def __init__(self, max_df_fraction: float = 0.25) -> None:
        if not 0.0 < max_df_fraction <= 1.0:
            raise NeuralDBError("max_df_fraction must be in (0, 1]")
        self.max_df_fraction = max_df_fraction
        self._postings: Dict[str, Set[int]] = {}
        self._tokens: Dict[int, Tuple[str, ...]] = {}

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._tokens

    @staticmethod
    def tokenize(text: str) -> List[str]:
        return simple_word_tokenize(text.lower())

    def add(self, doc_id: int, text: str) -> None:
        """Index one document (its tokens only — O(len(text)))."""
        if doc_id in self._tokens:
            raise NeuralDBError(f"document {doc_id} is already indexed")
        tokens = tuple(self.tokenize(text))
        self._tokens[doc_id] = tokens
        for token in set(tokens):
            self._postings.setdefault(token, set()).add(doc_id)

    def remove(self, doc_id: int) -> None:
        """Drop one document from its own postings — O(len(text))."""
        tokens = self._tokens.pop(doc_id, None)
        if tokens is None:
            raise NeuralDBError(f"document {doc_id} is not indexed")
        for token in set(tokens):
            postings = self._postings.get(token)
            if postings is not None:
                postings.discard(doc_id)
                if not postings:
                    del self._postings[token]

    def candidates(
        self, query: str, limit: Optional[int] = None
    ) -> List[int]:
        """Document ids matching ``query``, best idf-overlap first.

        Returns ``[]`` when no query token is indexed; callers fall
        back to a dense scan in that case. ``limit`` truncates after
        the deterministic ``(-score, doc_id)`` sort.
        """
        total = len(self._tokens)
        if total == 0:
            return []
        matched: List[Tuple[str, Set[int]]] = []
        for token in set(self.tokenize(query)):
            postings = self._postings.get(token)
            if postings:
                matched.append((token, postings))
        if not matched:
            return []
        max_df = self.max_df_fraction * total
        selective = [pair for pair in matched if len(pair[1]) <= max_df]
        # All-stopword queries keep every matched token: a weak
        # candidate set beats an empty one.
        if selective:
            matched = selective
        scores: Dict[int, float] = {}
        for _, postings in matched:
            idf = math.log(1.0 + total / len(postings))
            for doc_id in postings:
                scores[doc_id] = scores.get(doc_id, 0.0) + idf
        ranked = sorted(scores, key=lambda doc_id: (-scores[doc_id], doc_id))
        return ranked[:limit] if limit is not None else ranked
