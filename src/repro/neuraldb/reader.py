"""The neural reader: ``fact + question -> answer`` with a fine-tuned LM."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import cross_entropy
from repro.errors import NeuralDBError
from repro.generation import GenerationConfig, generate
from repro.models import GPTModel, ModelConfig
from repro.tokenizers import Tokenizer, WhitespaceTokenizer
from repro.training.data import IGNORE_INDEX
from repro.training.optim import AdamW
from repro.utils.rng import SeededRNG


def _linearize(fact: str, question: str, answer: Optional[str] = None) -> str:
    base = f"fact : {fact} question : {question} answer :"
    return f"{base} {answer}" if answer is not None else base


class NeuralReader:
    """Answers a question against one retrieved fact."""

    def __init__(self, model: GPTModel, tokenizer: Tokenizer) -> None:
        self.model = model
        self.tokenizer = tokenizer

    def read(self, fact: str, question: str, max_tokens: int = 4) -> str:
        prompt_ids = self.tokenizer.encode(
            _linearize(fact, question), add_bos=True
        ).ids
        out_ids = generate(self.model, prompt_ids, self._config(max_tokens))
        return self.tokenizer.decode(out_ids).strip()

    def read_batch(
        self,
        items: Sequence[Tuple[str, str]],
        max_tokens: int = 4,
        max_batch_size: int = 8,
    ) -> List[str]:
        """One answer per ``(fact, question)`` pair, decoded in batches.

        Runs every prompt through the serving
        :class:`~repro.serving.scheduler.BatchScheduler`, whose greedy
        decoding is token-identical to per-pair :meth:`read` — this is
        what the aggregation operators' full-store scans call instead
        of a per-fact generation loop.
        """
        if not items:
            return []
        from repro.serving import BatchRequest, BatchScheduler

        scheduler = BatchScheduler(self.model, max_batch_size=max_batch_size)
        config = self._config(max_tokens)
        tickets = [
            scheduler.submit(
                BatchRequest(
                    self.tokenizer.encode(
                        _linearize(fact, question), add_bos=True
                    ).ids,
                    config,
                )
            )
            for fact, question in items
        ]
        results = scheduler.run()
        return [
            self.tokenizer.decode(results[ticket].sequences[0]).strip()
            for ticket in tickets
        ]

    def _config(self, max_tokens: int) -> GenerationConfig:
        return GenerationConfig(
            max_new_tokens=max_tokens,
            strategy="greedy",
            stop_ids=(self.tokenizer.vocab.eos_id,),
        )


def train_reader(
    triples: Sequence[Tuple[str, str, str]],
    steps: int = 250,
    dim: int = 48,
    seq_len: int = 40,
    lr: float = 3e-3,
    seed: int = 0,
) -> NeuralReader:
    """Fine-tune a causal LM on (fact, question, answer) triples."""
    if not triples:
        raise NeuralDBError("no training triples")
    texts = [_linearize(f, q, a) for f, q, a in triples]
    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(texts, vocab_size=2048)

    config = ModelConfig(
        vocab_size=tokenizer.vocab_size,
        max_seq_len=seq_len,
        dim=dim,
        num_layers=2,
        num_heads=max(2, dim // 16),
        ff_dim=4 * dim,
        causal=True,
    )
    model = GPTModel(config, seed=seed)
    rows = []
    for text in texts:
        ids = tokenizer.encode(text, add_bos=True, add_eos=True, max_length=seq_len).ids
        rows.append(ids + [tokenizer.vocab.pad_id] * (seq_len - len(ids)))
    data = np.array(rows, dtype=np.int64)

    rng = SeededRNG(seed)
    optimizer = AdamW(model.parameters(), lr=lr)
    pad = tokenizer.vocab.pad_id
    model.train()
    for _ in range(steps):
        idx = rng.generator.choice(data.shape[0], size=min(16, data.shape[0]), replace=False)
        inputs = data[idx, :-1]
        targets = data[idx, 1:].copy()
        targets[targets == pad] = IGNORE_INDEX
        logits = model(inputs)
        loss = cross_entropy(
            logits.reshape(-1, config.vocab_size),
            targets.reshape(-1),
            ignore_index=IGNORE_INDEX,
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.clip_grad_norm(1.0)
        optimizer.step()
    model.eval()
    return NeuralReader(model=model, tokenizer=tokenizer)
