"""NeuralDB: a database whose rows are natural-language facts (§2.5, [77]).

Thorne et al.'s NeuralDB stores facts as free-text sentences and
answers queries with neural machinery instead of a schema: a retriever
selects relevant facts, a neural reader extracts per-fact answers, and
aggregation operators (count, set union, multi-hop joins) combine them.

This implementation mirrors that architecture at laptop scale: the
retriever is an embedding index over our BERT encoder (with a lexical
baseline for comparison), the reader is a fine-tuned causal LM that maps
``fact + question -> answer``, and the operator layer supports lookup,
count, and two-hop join queries.

At corpus scale (10^5+ facts) retrieval runs in two stages — an
:class:`InvertedIndex` candidate generator over token postings feeding
blocked embedding scoring — mutations maintain the index incrementally
(embed one fact, tombstone one row), and the scan operators decode all
per-fact reader prompts through one batched scheduler pass.
"""

from repro.neuraldb.facts import FactWorld, generate_fact_world
from repro.neuraldb.index import InvertedIndex
from repro.neuraldb.reader import NeuralReader, train_reader
from repro.neuraldb.retriever import (
    EmbeddingRetriever,
    LexicalRetriever,
    RetrieverStats,
)
from repro.neuraldb.store import NeuralDatabase, QueryOutcome
from repro.neuraldb.evaluate import NeuralDBReport, evaluate_neuraldb

__all__ = [
    "FactWorld",
    "generate_fact_world",
    "InvertedIndex",
    "NeuralReader",
    "train_reader",
    "LexicalRetriever",
    "EmbeddingRetriever",
    "RetrieverStats",
    "NeuralDatabase",
    "QueryOutcome",
    "NeuralDBReport",
    "evaluate_neuraldb",
]
