"""The SemanticDatabase: SQL plus the ``NL(column, 'description')`` operator."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.semantic.predicate import TextPredicate
from repro.semantic.rewrite import (
    SemanticError,
    extract_nl_calls,
    nl_call_parts,
    rewrite_expression,
    vet_rewritten,
)
from repro.sql import Database, QueryResult
from repro.sql.ast import (
    ColumnRef,
    FuncCall,
    InList,
    Literal,
    SelectQuery,
)
from repro.sql.parser import parse_sql


class SemanticDatabase:
    """Wraps a relational database with LM-evaluated text predicates.

    ``NL(column, 'description')`` calls in WHERE/HAVING are compiled
    before execution: the predicate runs once per *distinct* value of
    the column (the dictionary-evaluation strategy — classifier calls
    scale with vocabulary, not with row count), and the call is replaced
    by an ``IN`` list of matching values.
    """

    def __init__(self, db: Database, predicate: TextPredicate) -> None:
        self.db = db
        self.predicate = predicate
        self.predicate_evaluations = 0
        self._cache: Dict[Tuple[str, str], Tuple[str, ...]] = {}

    def execute(self, sql: str) -> QueryResult:
        """Parse, compile NL predicates away, and run on the engine."""
        statement = parse_sql(sql)
        if not isinstance(statement, SelectQuery):
            return self.db.execute(sql)
        calls = extract_nl_calls(statement.where) + extract_nl_calls(statement.having)
        if not calls:
            return self.db.execute(sql)

        def replace(call: FuncCall):
            column, description = nl_call_parts(call)
            matching = self._matching_values(statement, column, description)
            if not matching:
                # No value satisfies the predicate: compile to FALSE.
                return Literal(False)
            return InList(
                operand=column,
                items=tuple(Literal(v) for v in matching),
            )

        rewritten = dataclasses.replace(
            statement,
            where=(
                rewrite_expression(statement.where, replace)
                if statement.where is not None
                else None
            ),
            having=(
                rewrite_expression(statement.having, replace)
                if statement.having is not None
                else None
            ),
        )
        vet_rewritten(rewritten, self.db.catalog)
        return self.db.execute(rewritten.sql())

    # -- predicate compilation ------------------------------------------------
    def _matching_values(
        self, query: SelectQuery, column: ColumnRef, description: str
    ) -> Tuple[str, ...]:
        table_name = self._resolve_table(query, column)
        cache_key = (f"{table_name}.{column.name}".lower(), description.lower())
        if cache_key in self._cache:
            return self._cache[cache_key]
        values = sorted(
            {
                v
                for v in self.db.table(table_name).column_values(column.name)
                if isinstance(v, str)
            }
        )
        matching = tuple(
            v for v in values if self._evaluate(v, description)
        )
        self._cache[cache_key] = matching
        return matching

    def _evaluate(self, text: str, description: str) -> bool:
        self.predicate_evaluations += 1
        return self.predicate.matches(text, description)

    def _resolve_table(self, query: SelectQuery, column: ColumnRef) -> str:
        tables = [query.table] + [j.table for j in query.joins]
        if column.table is not None:
            for ref in tables:
                if ref.effective_name.lower() == column.table.lower():
                    return ref.name
            raise SemanticError(f"unknown table alias {column.table!r} in NL()")
        owners = [
            ref.name
            for ref in tables
            if self.db.table(ref.name).schema.has_column(column.name)
        ]
        if not owners:
            raise SemanticError(f"no table in FROM has column {column.name!r}")
        if len(owners) > 1:
            raise SemanticError(f"ambiguous NL() column {column.name!r}")
        return owners[0]
