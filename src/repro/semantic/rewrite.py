"""AST rewriting: compile ``NL(col, 'desc')`` calls into IN lists."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.analysis.findings import render_findings
from repro.analysis.sqlcheck import check_query
from repro.errors import ReproError
from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    SelectQuery,
    UnaryOp,
    walk_expr,
)
from repro.sql.catalog import Catalog

NL_FUNC = "NL"


class SemanticError(ReproError):
    """Raised for malformed NL(...) operator usage."""


def extract_nl_calls(expr: Optional[Expr]) -> List[FuncCall]:
    """All ``NL(column, 'description')`` calls inside an expression."""
    if expr is None:
        return []
    calls: List[FuncCall] = []
    for node in walk_expr(expr):
        if isinstance(node, FuncCall) and node.name.upper() == NL_FUNC:
            _validate(node)
            calls.append(node)
    return calls


def vet_rewritten(query: SelectQuery, catalog: Catalog) -> None:
    """Semantically validate a rewritten query before it executes.

    The NL-compilation step replaces predicates wholesale; running
    :func:`repro.analysis.sqlcheck.check_query` on the result catches
    invalid rewrites (unknown columns, type clashes) *before* the
    engine touches any rows, with findings in the error message.
    """
    findings = check_query(query, catalog)
    if findings:
        raise SemanticError(
            "rewritten query failed static validation:\n"
            + render_findings(findings)
        )


def _validate(call: FuncCall) -> None:
    if len(call.args) != 2:
        raise SemanticError("NL() takes exactly two arguments: NL(column, 'description')")
    if not isinstance(call.args[0], ColumnRef):
        raise SemanticError("the first argument of NL() must be a column")
    if not isinstance(call.args[1], Literal) or not isinstance(call.args[1].value, str):
        raise SemanticError("the second argument of NL() must be a string literal")


def nl_call_parts(call: FuncCall) -> Tuple[ColumnRef, str]:
    """Destructure a validated NL call into (column, description)."""
    column = call.args[0]
    description = call.args[1].value
    assert isinstance(column, ColumnRef) and isinstance(description, str)
    return column, description


def rewrite_expression(
    expr: Expr, replacement: Callable[[FuncCall], Expr]
) -> Expr:
    """Return a copy of ``expr`` with every NL call replaced.

    ``replacement`` maps each NL :class:`FuncCall` to the expression
    that should stand in for it (typically an :class:`InList`).
    """
    if isinstance(expr, FuncCall):
        if expr.name.upper() == NL_FUNC:
            return replacement(expr)
        return FuncCall(
            name=expr.name,
            args=tuple(rewrite_expression(a, replacement) for a in expr.args),
            distinct=expr.distinct,
        )
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            op=expr.op,
            left=rewrite_expression(expr.left, replacement),
            right=rewrite_expression(expr.right, replacement),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(op=expr.op, operand=rewrite_expression(expr.operand, replacement))
    if isinstance(expr, IsNull):
        return IsNull(
            operand=rewrite_expression(expr.operand, replacement), negated=expr.negated
        )
    if isinstance(expr, InList):
        return InList(
            operand=rewrite_expression(expr.operand, replacement),
            items=tuple(rewrite_expression(i, replacement) for i in expr.items),
            negated=expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            operand=rewrite_expression(expr.operand, replacement),
            low=rewrite_expression(expr.low, replacement),
            high=rewrite_expression(expr.high, replacement),
            negated=expr.negated,
        )
    if isinstance(expr, CaseWhen):
        return CaseWhen(
            branches=tuple(
                (
                    rewrite_expression(condition, replacement),
                    rewrite_expression(value, replacement),
                )
                for condition, value in expr.branches
            ),
            default=(
                rewrite_expression(expr.default, replacement)
                if expr.default is not None
                else None
            ),
        )
    return expr
