"""Text predicates: given a description, classify strings as matching.

Two implementations back the ``NL(column, 'description')`` operator:

* :class:`KeywordPredicate` — matches when any description keyword
  occurs in the text (the heuristic a non-LM system would use);
* :class:`FinetunedPredicate` — a fine-tuned encoder classifier
  (the LM operator the tutorial motivates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.models import BERTModel, ModelConfig, SequenceClassifier
from repro.sql import Database
from repro.tokenizers import Tokenizer, WhitespaceTokenizer
from repro.training import LabeledExample, finetune_classifier
from repro.utils.rng import SeededRNG
from repro.utils.text import simple_word_tokenize


class TextPredicate(Protocol):
    """Decides whether a text satisfies a natural-language description."""

    def matches(self, text: str, description: str) -> bool:
        ...


class KeywordPredicate:
    """Baseline: the text matches if it shares a content word with the
    description (stop words removed)."""

    STOP_WORDS = {"the", "a", "an", "is", "are", "was", "review", "text",
                  "this", "it", "of", "in", "very"}

    def matches(self, text: str, description: str) -> bool:
        description_words = {
            w for w in simple_word_tokenize(description.lower())
            if w.isalpha() and w not in self.STOP_WORDS
        }
        text_words = set(simple_word_tokenize(text.lower()))
        return bool(description_words & text_words)


# -- synthetic review corpus ---------------------------------------------------
_POSITIVE_PHRASES = [
    "works great and arrived quickly",
    "excellent build quality , totally worth it",
    "my favorite purchase this year , love it",
    "fantastic value , exceeded expectations",
    "superb performance , highly recommended",
    "delightful to use every day",
]
_NEGATIVE_PHRASES = [
    "broke after two days , very disappointing",
    "terrible quality , asked for a refund",
    "arrived damaged and support ignored me",
    "waste of money , do not buy",
    "awful experience , it never worked",
    "flimsy and unreliable , regret buying it",
]
_PRODUCTS = ["keyboard", "monitor", "router", "webcam", "headset", "speaker"]


def generate_review_table(
    num_rows: int = 30, seed: int = 0
) -> Tuple[Database, Dict[int, bool]]:
    """A products table with a ``review`` TEXT column.

    Returns the database plus the gold ``row id -> positive?`` map for
    evaluation.
    """
    rng = SeededRNG(seed)
    db = Database()
    db.execute("CREATE TABLE products (id INT, name TEXT, review TEXT)")
    gold: Dict[int, bool] = {}
    for i in range(num_rows):
        positive = i % 2 == 0
        phrase = rng.choice(_POSITIVE_PHRASES if positive else _NEGATIVE_PHRASES)
        review = f"the {rng.choice(_PRODUCTS)} {phrase}"
        gold[i] = positive
        escaped = review.replace("'", "''")
        db.execute(
            f"INSERT INTO products VALUES ({i}, '{rng.choice(_PRODUCTS)}', '{escaped}')"
        )
    return db, gold


def _training_reviews(seed: int = 1, per_class: int = 30) -> List[LabeledExample]:
    rng = SeededRNG(seed)
    examples: List[LabeledExample] = []
    for i in range(per_class):
        examples.append(
            LabeledExample(
                text=f"the {rng.choice(_PRODUCTS)} {rng.choice(_POSITIVE_PHRASES)}",
                label=1,
            )
        )
        examples.append(
            LabeledExample(
                text=f"the {rng.choice(_PRODUCTS)} {rng.choice(_NEGATIVE_PHRASES)}",
                label=0,
            )
        )
    return examples


class FinetunedPredicate:
    """An LM text classifier behind the ``NL`` operator.

    One classifier handles one predicate family (here: sentiment); the
    description selects the polarity ("positive" vs "negative").
    """

    def __init__(
        self, classifier: SequenceClassifier, tokenizer: Tokenizer, max_len: int
    ) -> None:
        self._classifier = classifier
        self._tokenizer = tokenizer
        self._max_len = max_len

    def matches(self, text: str, description: str) -> bool:
        wants_positive = "positive" in description.lower() or (
            "negative" not in description.lower()
        )
        encoding = self._tokenizer.encode(
            text, max_length=self._max_len, pad_to=self._max_len
        )
        prediction = self._classifier.predict(
            np.array([encoding.ids]), np.array([encoding.attention_mask])
        )
        is_positive = bool(prediction[0] == 1)
        return is_positive if wants_positive else not is_positive


def train_review_predicate(
    epochs: int = 8, dim: int = 32, seed: int = 0
) -> FinetunedPredicate:
    """Fine-tune the sentiment classifier backing the NL operator."""
    examples = _training_reviews(seed=seed + 1)
    texts = [e.text for e in examples]
    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(texts, vocab_size=512)
    max_len = max(len(tokenizer.encode(t).ids) for t in texts) + 2

    config = ModelConfig(
        vocab_size=tokenizer.vocab_size, max_seq_len=max_len, dim=dim,
        num_layers=2, num_heads=2, ff_dim=4 * dim, causal=False,
    )
    classifier = SequenceClassifier(BERTModel(config, seed=seed), 2, seed=seed)
    finetune_classifier(
        classifier, tokenizer, examples,
        epochs=epochs, lr=2e-3, max_length=max_len, seed=seed,
    )
    return FinetunedPredicate(classifier=classifier, tokenizer=tokenizer, max_len=max_len)
