"""Natural-language predicates inside SQL (§2.5: LM-implemented operators).

The tutorial's second §2.5 thread: language models inside the execution
engine — implementing operators over text the way ThalamusDB [32]
answers "SQL with natural-language predicates" and Ember/NeuralDB
[74, 77] push LM operators into query plans.

Here a :class:`SemanticDatabase` accepts standard SQL extended with::

    SELECT name FROM products WHERE NL(review, 'the review is positive')

``NL(column, 'description')`` is compiled *before* execution: the
predicate is evaluated once per distinct column value by a pluggable
text classifier (an LM or a keyword baseline), and the call is rewritten
into an ordinary ``IN`` list the relational engine executes natively —
the materialize-then-filter strategy semantic operators use in practice.
"""

from repro.semantic.predicate import (
    FinetunedPredicate,
    KeywordPredicate,
    TextPredicate,
    generate_review_table,
    train_review_predicate,
)
from repro.semantic.rewrite import extract_nl_calls, rewrite_expression
from repro.semantic.database import SemanticDatabase

__all__ = [
    "TextPredicate",
    "KeywordPredicate",
    "FinetunedPredicate",
    "generate_review_table",
    "train_review_predicate",
    "extract_nl_calls",
    "rewrite_expression",
    "SemanticDatabase",
]
