"""Semantic validation of SQL queries against a catalog.

The engine discovers schema errors only when a query *runs*; generated
SQL (text-to-SQL predictions, semantic-operator rewrites) should be
vetted before that. This pass resolves every table and column reference
against the :class:`~repro.sql.catalog.Catalog`, flags ambiguous
unqualified columns, and type-checks comparisons, arithmetic, and
aggregate arguments — all without touching a single row.

The SQL AST carries no source positions, so findings locate the problem
by quoting the offending fragment (``expr.sql()``) instead of a line
number.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.analysis.findings import Finding
from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    SelectQuery,
    Star,
    Statement,
    Subquery,
    UnaryOp,
)
from repro.sql.catalog import Catalog
from repro.sql.parser import parse_sql
from repro.sql.schema import TableSchema
from repro.sql.types import SQLType, infer_type

_NUMERIC = (SQLType.INT, SQLType.FLOAT)
_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")
_ARITHMETIC = ("+", "-", "*", "/")

_SCALAR_FUNC_TYPES = {
    "ABS": None,  # same as argument
    "LENGTH": SQLType.INT,
    "UPPER": SQLType.TEXT,
    "LOWER": SQLType.TEXT,
}

#: the semantic NL() operator is resolved by SemanticDatabase, not here
_SEMANTIC_FUNCS = ("NL",)


class _Scope:
    """The tables visible to a query: (effective name, schema) pairs."""

    def __init__(self, tables: Sequence[Tuple[str, TableSchema]]) -> None:
        self.tables = list(tables)

    def resolve(
        self, ref: ColumnRef
    ) -> Tuple[Optional[SQLType], Optional[Finding]]:
        """Type of a column reference, or the finding explaining why not."""
        if ref.table is not None:
            for name, schema in self.tables:
                if name.lower() == ref.table.lower():
                    sql_type = schema.type_of(ref.name)
                    if sql_type is None:
                        return None, Finding(
                            rule="unknown-column",
                            message=f"table {name!r} has no column "
                            f"{ref.name!r} (has: {schema.column_names})",
                        )
                    return sql_type, None
            return None, Finding(
                rule="unknown-alias",
                message=f"no table {ref.table!r} in FROM for reference "
                f"{ref.sql()!r}",
            )
        owners = [
            (name, schema)
            for name, schema in self.tables
            if schema.has_column(ref.name)
        ]
        if not owners:
            known = sorted(
                {c for _, schema in self.tables for c in schema.column_names}
            )
            return None, Finding(
                rule="unknown-column",
                message=f"no table in FROM has column {ref.name!r} "
                f"(known columns: {known})",
            )
        if len(owners) > 1:
            tables = sorted(name for name, _ in owners)
            return None, Finding(
                rule="ambiguous-column",
                message=f"column {ref.name!r} exists in {tables}; "
                "qualify it with a table name",
            )
        return owners[0][1].type_of(ref.name), None


def check_sql(sql: str, catalog: Catalog) -> List[Finding]:
    """Parse ``sql`` and validate it; parse failures become findings."""
    try:
        statement = parse_sql(sql)
    except SQLSyntaxError as exc:
        return [Finding(rule="syntax", message=str(exc))]
    return check_statement(statement, catalog)


def check_statement(statement: Statement, catalog: Catalog) -> List[Finding]:
    """Validate a parsed statement (only SELECT has semantic checks)."""
    if isinstance(statement, SelectQuery):
        return check_query(statement, catalog)
    return []


def check_query(query: SelectQuery, catalog: Catalog) -> List[Finding]:
    """Validate one SELECT against the catalog; empty list means clean."""
    findings: List[Finding] = []
    visible: List[Tuple[str, TableSchema]] = []
    for ref in [query.table] + [join.table for join in query.joins]:
        table = catalog.resolve(ref.name)
        if table is None:
            findings.append(
                Finding(
                    rule="unknown-table",
                    message=f"no table {ref.name!r} in catalog "
                    f"(known: {catalog.names()})",
                )
            )
        else:
            visible.append((ref.effective_name, table.schema))
    scope = _Scope(visible)

    for join in query.joins:
        if join.condition is not None:
            findings += _check_expr(
                join.condition, scope, catalog, allow_aggregates=False
            )
    if query.where is not None:
        findings += _check_expr(
            query.where, scope, catalog, allow_aggregates=False
        )
    for expr in query.group_by:
        findings += _check_expr(expr, scope, catalog, allow_aggregates=False)
    if query.having is not None:
        findings += _check_expr(
            query.having, scope, catalog, allow_aggregates=True
        )
    for item in query.items:
        if isinstance(item.expr, Star):
            continue
        findings += _check_expr(
            item.expr, scope, catalog, allow_aggregates=True
        )

    output_names = {
        item.output_name(i).lower() for i, item in enumerate(query.items)
    }
    for order in query.order_by:
        expr = order.expr
        if (
            isinstance(expr, ColumnRef)
            and expr.table is None
            and expr.name.lower() in output_names
        ):
            continue  # ordering by an output column/alias is always valid
        findings += _check_expr(expr, scope, catalog, allow_aggregates=True)
    return findings


# -- expression checking ---------------------------------------------------
def _check_expr(
    expr: Expr,
    scope: _Scope,
    catalog: Catalog,
    allow_aggregates: bool,
) -> List[Finding]:
    _, findings = _infer(expr, scope, catalog, allow_aggregates)
    return findings


def _infer(
    expr: Expr,
    scope: _Scope,
    catalog: Catalog,
    allow_aggregates: bool,
    inside_aggregate: bool = False,
) -> Tuple[Optional[SQLType], List[Finding]]:
    """Infer an expression's type, collecting findings along the way.

    ``None`` as a type means "unknown" (NULL literal, unresolved column,
    unsupported construct) and suppresses downstream type checks, so one
    unknown column yields one finding, not a cascade.
    """
    if isinstance(expr, Literal):
        if expr.value is None:
            return None, []
        return infer_type(expr.value), []
    if isinstance(expr, ColumnRef):
        sql_type, finding = scope.resolve(expr)
        return sql_type, [finding] if finding else []
    if isinstance(expr, Star):
        return None, [
            Finding(
                rule="misplaced-star",
                message="'*' is only valid as a select item or in COUNT(*)",
            )
        ]
    if isinstance(expr, BinaryOp):
        return _infer_binary(expr, scope, catalog, allow_aggregates, inside_aggregate)
    if isinstance(expr, UnaryOp):
        operand_type, findings = _infer(
            expr.operand, scope, catalog, allow_aggregates, inside_aggregate
        )
        if expr.op == "NOT":
            return SQLType.BOOL, findings
        if operand_type is SQLType.TEXT:
            findings.append(
                Finding(
                    rule="type-mismatch",
                    message=f"unary '-' applied to TEXT in {expr.sql()}",
                )
            )
        return operand_type, findings
    if isinstance(expr, IsNull):
        _, findings = _infer(
            expr.operand, scope, catalog, allow_aggregates, inside_aggregate
        )
        return SQLType.BOOL, findings
    if isinstance(expr, InList):
        return _infer_in_list(expr, scope, catalog, allow_aggregates, inside_aggregate)
    if isinstance(expr, Between):
        operand_type, findings = _infer(
            expr.operand, scope, catalog, allow_aggregates, inside_aggregate
        )
        for bound in (expr.low, expr.high):
            bound_type, sub = _infer(
                bound, scope, catalog, allow_aggregates, inside_aggregate
            )
            findings += sub
            if _incompatible(operand_type, bound_type):
                findings.append(
                    Finding(
                        rule="type-mismatch",
                        message=f"BETWEEN bound {bound.sql()} has type "
                        f"{bound_type.value}, operand is "
                        f"{operand_type.value} in {expr.sql()}",
                    )
                )
        return SQLType.BOOL, findings
    if isinstance(expr, FuncCall):
        return _infer_func(expr, scope, catalog, allow_aggregates, inside_aggregate)
    if isinstance(expr, CaseWhen):
        findings = []
        result_type: Optional[SQLType] = None
        for condition, value in expr.branches:
            findings += _check_expr(condition, scope, catalog, allow_aggregates)
            value_type, sub = _infer(
                value, scope, catalog, allow_aggregates, inside_aggregate
            )
            findings += sub
            result_type = result_type or value_type
        if expr.default is not None:
            default_type, sub = _infer(
                expr.default, scope, catalog, allow_aggregates, inside_aggregate
            )
            findings += sub
            result_type = result_type or default_type
        return result_type, findings
    if isinstance(expr, Subquery):
        findings = check_query(expr.query, catalog)
        if len(expr.query.items) != 1:
            findings.append(
                Finding(
                    rule="subquery-shape",
                    message="scalar subquery must select exactly one column: "
                    + expr.sql(),
                )
            )
        return None, findings
    if isinstance(expr, InSubquery):
        _, findings = _infer(
            expr.operand, scope, catalog, allow_aggregates, inside_aggregate
        )
        findings += check_query(expr.query, catalog)
        return SQLType.BOOL, findings
    return None, []


def _infer_binary(
    expr: BinaryOp,
    scope: _Scope,
    catalog: Catalog,
    allow_aggregates: bool,
    inside_aggregate: bool,
) -> Tuple[Optional[SQLType], List[Finding]]:
    left_type, findings = _infer(
        expr.left, scope, catalog, allow_aggregates, inside_aggregate
    )
    right_type, sub = _infer(
        expr.right, scope, catalog, allow_aggregates, inside_aggregate
    )
    findings += sub
    if expr.op in ("AND", "OR"):
        return SQLType.BOOL, findings
    if expr.op == "||":
        return SQLType.TEXT, findings
    if expr.op in _COMPARISONS:
        if _incompatible(left_type, right_type):
            findings.append(
                Finding(
                    rule="type-mismatch",
                    message=f"cannot compare {left_type.value} with "
                    f"{right_type.value} in {expr.sql()}",
                )
            )
        return SQLType.BOOL, findings
    if expr.op in _ARITHMETIC:
        for operand_type, operand in ((left_type, expr.left), (right_type, expr.right)):
            if operand_type is SQLType.TEXT:
                findings.append(
                    Finding(
                        rule="type-mismatch",
                        message=f"arithmetic on TEXT operand {operand.sql()} "
                        f"in {expr.sql()}",
                    )
                )
        if expr.op == "/" or SQLType.FLOAT in (left_type, right_type):
            return SQLType.FLOAT, findings
        if left_type is None or right_type is None:
            return None, findings
        return SQLType.INT, findings
    return None, findings


def _infer_in_list(
    expr: InList,
    scope: _Scope,
    catalog: Catalog,
    allow_aggregates: bool,
    inside_aggregate: bool,
) -> Tuple[Optional[SQLType], List[Finding]]:
    operand_type, findings = _infer(
        expr.operand, scope, catalog, allow_aggregates, inside_aggregate
    )
    for item in expr.items:
        item_type, sub = _infer(
            item, scope, catalog, allow_aggregates, inside_aggregate
        )
        findings += sub
        if _incompatible(operand_type, item_type):
            findings.append(
                Finding(
                    rule="type-mismatch",
                    message=f"IN list item {item.sql()} has type "
                    f"{item_type.value}, operand is {operand_type.value}",
                )
            )
    return SQLType.BOOL, findings


def _infer_func(
    expr: FuncCall,
    scope: _Scope,
    catalog: Catalog,
    allow_aggregates: bool,
    inside_aggregate: bool,
) -> Tuple[Optional[SQLType], List[Finding]]:
    name = expr.name.upper()
    if expr.is_aggregate:
        findings: List[Finding] = []
        if not allow_aggregates:
            findings.append(
                Finding(
                    rule="misplaced-aggregate",
                    message=f"aggregate {expr.sql()} is not allowed in "
                    "WHERE/ON/GROUP BY",
                )
            )
        if inside_aggregate:
            findings.append(
                Finding(
                    rule="nested-aggregate",
                    message=f"aggregate {expr.sql()} nested inside another "
                    "aggregate",
                )
            )
        if name == "COUNT" and len(expr.args) == 1 and isinstance(
            expr.args[0], Star
        ):
            return SQLType.INT, findings
        if len(expr.args) != 1:
            findings.append(
                Finding(
                    rule="aggregate-arity",
                    message=f"{name} takes exactly one argument, got "
                    f"{len(expr.args)}",
                )
            )
            return None, findings
        arg_type, sub = _infer(
            expr.args[0], scope, catalog, allow_aggregates, inside_aggregate=True
        )
        findings += sub
        if name in ("SUM", "AVG") and arg_type not in (None,) + _NUMERIC:
            findings.append(
                Finding(
                    rule="aggregate-type",
                    message=f"{name} requires a numeric argument, got "
                    f"{arg_type.value} in {expr.sql()}",
                )
            )
        if name == "COUNT":
            return SQLType.INT, findings
        if name == "AVG":
            return SQLType.FLOAT, findings
        return arg_type, findings
    if name in _SEMANTIC_FUNCS:
        findings = []
        if expr.args and isinstance(expr.args[0], ColumnRef):
            findings += _check_expr(expr.args[0], scope, catalog, False)
        return SQLType.BOOL, findings
    if name in _SCALAR_FUNC_TYPES:
        if len(expr.args) != 1:
            return None, [
                Finding(
                    rule="aggregate-arity",
                    message=f"{name} takes exactly one argument, got "
                    f"{len(expr.args)}",
                )
            ]
        arg_type, findings = _infer(
            expr.args[0], scope, catalog, allow_aggregates, inside_aggregate
        )
        declared = _SCALAR_FUNC_TYPES[name]
        return (declared if declared is not None else arg_type), findings
    findings = [
        Finding(
            rule="unknown-function",
            message=f"unknown function {name} in {expr.sql()}",
        )
    ]
    for arg in expr.args:
        if not isinstance(arg, Star):
            findings += _check_expr(arg, scope, catalog, allow_aggregates)
    return None, findings


def _incompatible(
    left: Optional[SQLType], right: Optional[SQLType]
) -> bool:
    """True only when both types are known and clearly clash.

    INT and FLOAT mix freely; BOOL compares with numerics (SQLite-style
    0/1); TEXT never mixes with numerics.
    """
    if left is None or right is None or left is right:
        return False
    if left is SQLType.TEXT or right is SQLType.TEXT:
        return True
    return False
