"""The shared finding record emitted by every analysis pass."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Finding:
    """One static-analysis diagnostic.

    ``rule`` is a short stable identifier (e.g. ``banned-import``,
    ``unknown-column``, ``mutable-default``); ``line`` is 1-based and 0
    when the finding has no meaningful location (e.g. a missing module
    docstring or output-contract variable).
    """

    rule: str
    message: str
    line: int = 0
    source: Optional[str] = None

    def render(self) -> str:
        """Human-readable one-liner: ``[rule] line N: message``."""
        where = f"line {self.line}: " if self.line else ""
        prefix = f"{self.source}:" if self.source else ""
        return f"{prefix}{where}[{self.rule}] {self.message}"


def render_findings(findings: Sequence[Finding]) -> str:
    """Render findings one per line (for error messages and CLI output)."""
    return "\n".join(f.render() for f in findings)
