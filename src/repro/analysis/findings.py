"""The shared finding record emitted by every analysis pass."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Finding:
    """One static-analysis diagnostic.

    ``rule`` is a short stable identifier (e.g. ``banned-import``,
    ``unknown-column``, ``mutable-default``); ``line`` is 1-based and 0
    when the finding has no meaningful location (e.g. a missing module
    docstring or output-contract variable). ``severity`` is ``"error"``
    for findings that must block the artifact and ``"warning"`` for
    advisory findings (dead code, statically unbounded work) that
    callers may act on without rejecting — the CodexDB sandbox, for
    example, converts ``unbounded-work`` warnings into a runtime fuel
    limit instead of refusing to run the program.
    """

    rule: str
    message: str
    line: int = 0
    source: Optional[str] = None
    severity: str = "error"

    def render(self) -> str:
        """Human-readable one-liner: ``[rule] line N: message``."""
        where = f"line {self.line}: " if self.line else ""
        prefix = f"{self.source}:" if self.source else ""
        tag = self.rule if self.severity == "error" else f"{self.rule}:{self.severity}"
        return f"{prefix}{where}[{tag}] {self.message}"


def render_findings(findings: Sequence[Finding]) -> str:
    """Render findings one per line (for error messages and CLI output)."""
    return "\n".join(f.render() for f in findings)


def error_findings(findings: Sequence[Finding]) -> List[Finding]:
    """The subset of ``findings`` that must block the artifact."""
    return [f for f in findings if f.severity == "error"]


def warning_findings(findings: Sequence[Finding]) -> List[Finding]:
    """The advisory subset of ``findings`` (safe to run, worth knowing)."""
    return [f for f in findings if f.severity != "error"]
