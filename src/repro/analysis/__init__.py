"""Static vetting of generated artifacts, plus a repo-wide linter.

Both flagship applications of the paper — CodexDB-style code synthesis
and text-to-SQL — *execute model-generated programs*. This package
makes sure nothing generated runs unvetted:

* :mod:`~repro.analysis.dataflow` — CFG construction and worklist
  dataflow over Python ASTs (definite assignment, taint tracking,
  reachability, loop-bound estimation);
* :mod:`~repro.analysis.pycheck` — flow-sensitive safety/correctness
  analysis of generated Python standing on the dataflow engine (the
  sandbox runs it before ``exec``);
* :mod:`~repro.analysis.corpus` — labeled adversarial/benign fixture
  programs pinning the vetter's exact verdicts;
* :mod:`~repro.analysis.concurrency` — shared-state audit of the
  serving classes plus the async-safety lint rules that gate the
  upcoming gateway;
* :mod:`~repro.analysis.sqlcheck` — semantic validation of SQL against
  the catalog (text-to-SQL reports it as the ``static_valid`` metric,
  the semantic operator uses it to reject bad rewrites early);
* :mod:`~repro.analysis.lint` — project-specific lint rules over our
  own source tree (``python -m repro.analysis.lint src/ tests/``).
"""

from repro.analysis.concurrency import shared_state_report
from repro.analysis.dataflow import (
    ProgramReport,
    analyze_program,
    build_cfg,
    solve_forward,
)
from repro.analysis.findings import (
    Finding,
    error_findings,
    render_findings,
    warning_findings,
)
from repro.analysis.pycheck import (
    IMPORT_ALLOWLIST,
    TAINT_SINKS,
    TAINT_SOURCES,
    assert_safe,
    check_python,
)
from repro.analysis.sqlcheck import check_query, check_sql, check_statement

# NOTE: repro.analysis.lint is intentionally *not* imported here — it is
# the ``python -m repro.analysis.lint`` entry point, and importing it
# from the package __init__ would trigger runpy's double-import warning.
# (repro.analysis.concurrency backs two of its rules but does not import
# it, so the guarantee holds.)

__all__ = [
    "Finding",
    "ProgramReport",
    "analyze_program",
    "build_cfg",
    "solve_forward",
    "error_findings",
    "render_findings",
    "warning_findings",
    "shared_state_report",
    "IMPORT_ALLOWLIST",
    "TAINT_SINKS",
    "TAINT_SOURCES",
    "assert_safe",
    "check_python",
    "check_query",
    "check_sql",
    "check_statement",
]
