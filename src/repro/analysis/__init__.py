"""Static vetting of generated artifacts, plus a repo-wide linter.

Both flagship applications of the paper — CodexDB-style code synthesis
and text-to-SQL — *execute model-generated programs*. This package
makes sure nothing generated runs unvetted:

* :mod:`~repro.analysis.pycheck` — AST safety/correctness analysis of
  generated Python (the sandbox runs it before ``exec``);
* :mod:`~repro.analysis.sqlcheck` — semantic validation of SQL against
  the catalog (text-to-SQL reports it as the ``static_valid`` metric,
  the semantic operator uses it to reject bad rewrites early);
* :mod:`~repro.analysis.lint` — project-specific lint rules over our
  own source tree (``python -m repro.analysis.lint src/ tests/``).
"""

from repro.analysis.findings import Finding, render_findings
from repro.analysis.pycheck import (
    IMPORT_ALLOWLIST,
    assert_safe,
    check_python,
)
from repro.analysis.sqlcheck import check_query, check_sql, check_statement

# NOTE: repro.analysis.lint is intentionally *not* imported here — it is
# the ``python -m repro.analysis.lint`` entry point, and importing it
# from the package __init__ would trigger runpy's double-import warning.

__all__ = [
    "Finding",
    "render_findings",
    "IMPORT_ALLOWLIST",
    "assert_safe",
    "check_python",
    "check_query",
    "check_sql",
    "check_statement",
]
