"""Control-flow graphs and dataflow analyses over Python ASTs.

The flow-*insensitive* vetting of PR 1 banned the mere mention of a
dangerous name — rejecting benign programs that shadow a builtin or
mention one in a dead branch — while its flat ``_bound_names`` set was
scope-blind, silently accepting a module-level read of a name bound
only inside a nested ``def``. This module replaces that with a small
but honest dataflow engine:

* :func:`build_cfg` turns a statement list into a control-flow graph of
  basic blocks — branch/loop/``try``/``with`` edges, ``break``/
  ``continue``/``return``/``raise`` exits, and constant-condition
  pruning (the body of ``if False:`` has no incoming edge, so every
  analysis sees it as unreachable);
* a generic worklist fixpoint solver runs a *product* lattice over the
  graph: a **must** component (definitely-assigned name sets, meet =
  intersection) and a **may** component (taint tags per name, join =
  union);
* :class:`ScopeAnalysis` interprets one lexical scope — module,
  function, lambda, or class body — against that fixpoint and emits
  findings; nested scopes are analyzed recursively with proper
  enclosing-name visibility, so a name bound only inside a ``def`` is
  *not* visible at module level.

Analyses standing on the engine (all surfaced through
:func:`analyze_program` and consumed by :mod:`repro.analysis.pycheck`):

1. **definite assignment / use-before-def** — a load of a scope-local
   name that is not assigned on every path to it is an error; loads of
   names local to *no* enclosing scope are unknown-name errors;
2. **taint tracking** — values derived from untrusted sources (the
   sandbox ``tables`` input) carry an ``untrusted`` tag and values
   aliasing banned builtins carry ``danger`` tags; calling through a
   danger-tagged alias or passing untrusted data into a sink argument
   (``getattr`` attribute names, ``__import__``/``eval`` payloads,
   ``open`` paths) is an error, while a banned name that is shadowed or
   unreachable is not;
3. **reachability + loop bounds** — statements with no path from entry
   get ``unreachable-code`` warnings; ``while`` loops that provably
   cannot exit (constant-true with no reachable break, or a call-free
   condition whose names the body never touches) are ``unbounded-loop``
   errors; loops that terminate only on data-dependent exits get a
   ``statically-unbounded-work`` warning that the CodexDB sandbox
   converts into a runtime fuel limit.

Known imprecision (documented, deliberately conservative): ``finally``
blocks are analyzed on the normal path but their assignments are not
credited to ``break``/``return`` paths that jump out of the ``try``;
exception edges join the state at the ``try`` entry and after each
simple statement of the body, not mid-expression.
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.findings import Finding

#: taint tag carried by values derived from sandbox inputs
UNTRUSTED = ("untrusted",)

#: list-mutating method names treated as writes by callers (concurrency
#: audit) and as mutations by the loop-bound analysis
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "pop", "popitem",
        "remove", "discard", "clear", "sort", "setdefault", "reverse",
    }
)

#: ``itertools`` constructors that yield infinite iterators (``repeat``
#: only when called without a ``times`` bound)
_INFINITE_ITERTOOLS = frozenset({"count", "cycle", "repeat"})


# -- control-flow graph ----------------------------------------------------
class Block:
    """One basic block: straight-line elements plus successor edges.

    ``elements`` is an ordered list of execution events:

    * ``("stmt", stmt)`` — a simple statement executes wholly;
    * ``("eval", expr)`` — an expression is evaluated (branch test,
      loop iterable, return value, raised exception, ...);
    * ``("bind", target, source)`` — ``target`` is bound from the value
      of ``source`` (``for`` targets, ``with ... as`` vars);
    * ``("bindname", name, node)`` — a bare name is bound (``except
      ... as e``, match captures).
    """

    __slots__ = ("index", "elements", "succs", "preds")

    def __init__(self, index: int) -> None:
        self.index = index
        self.elements: List[tuple] = []
        self.succs: List["Block"] = []
        self.preds: List["Block"] = []


class CFG:
    """A scope's control-flow graph with entry/exit/error-exit blocks."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.entry = self.new_block()
        self.exit = self.new_block()
        self.error_exit = self.new_block()
        #: ``(loop_node, _LoopFrame)`` pairs recorded during the build
        self.loops: List[Tuple[ast.stmt, "_LoopFrame"]] = []

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: Block, dst: Block) -> None:
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)

    def reachable(self) -> Set[int]:
        """Indices of blocks reachable from the entry block."""
        seen = {self.entry.index}
        stack = [self.entry]
        while stack:
            block = stack.pop()
            for succ in block.succs:
                if succ.index not in seen:
                    seen.add(succ.index)
                    stack.append(succ)
        return seen


@dataclass
class _LoopFrame:
    """Build-time bookkeeping for one ``while``/``for`` loop."""

    header: Block
    after: Block
    node: ast.stmt
    #: blocks containing a break/return/raise that leaves this loop
    exits: List[Block] = field(default_factory=list)


def _const_truth(expr: ast.expr) -> Optional[bool]:
    """Constant truthiness of a branch test, or ``None`` if dynamic."""
    if isinstance(expr, ast.Constant):
        try:
            return bool(expr.value)
        except Exception:  # pragma: no cover - exotic constants
            return None
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        inner = _const_truth(expr.operand)
        return None if inner is None else not inner
    return None


class _CFGBuilder:
    """Single-pass AST-to-CFG lowering for one scope's statement list."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.current = self.cfg.entry
        self.loops: List[_LoopFrame] = []
        self.handlers: List[List[Block]] = []

    def build(self, stmts: Sequence[ast.stmt]) -> CFG:
        self.visit_body(stmts)
        self.cfg.add_edge(self.current, self.cfg.exit)
        return self.cfg

    # -- plumbing ----------------------------------------------------------
    def emit(self, element: tuple) -> None:
        self.current.elements.append(element)

    def _jump(self, target: Optional[Block]) -> None:
        """Edge to ``target`` (if any) then continue in a fresh block.

        The fresh block has no predecessor, so statements after an
        unconditional jump are naturally unreachable.
        """
        if target is not None:
            self.cfg.add_edge(self.current, target)
        self.current = self.cfg.new_block()

    def _split_for_handlers(self) -> None:
        """After a statement inside ``try``, branch to every handler.

        This gives exception handlers a join over the state at the try
        entry *and* after each completed statement of the body, which is
        what both the must- and may-analyses need to stay sound.
        """
        if not self.handlers:
            return
        nxt = self.cfg.new_block()
        for entries in self.handlers:
            for handler in entries:
                self.cfg.add_edge(self.current, handler)
        self.cfg.add_edge(self.current, nxt)
        self.current = nxt

    # -- statement dispatch ------------------------------------------------
    def visit_body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.visit(stmt)

    def visit(self, stmt: ast.stmt) -> None:
        handler = getattr(self, f"visit_{type(stmt).__name__}", None)
        if handler is not None:
            handler(stmt)
        else:
            self.emit(("stmt", stmt))
            self._split_for_handlers()

    def visit_If(self, node: ast.If) -> None:
        self.emit(("eval", node.test))
        truth = _const_truth(node.test)
        then_block = self.cfg.new_block()
        else_block = self.cfg.new_block()
        after = self.cfg.new_block()
        if truth is not False:
            self.cfg.add_edge(self.current, then_block)
        if truth is not True:
            self.cfg.add_edge(self.current, else_block)
        self.current = then_block
        self.visit_body(node.body)
        self.cfg.add_edge(self.current, after)
        self.current = else_block
        self.visit_body(node.orelse)
        self.cfg.add_edge(self.current, after)
        self.current = after

    def visit_While(self, node: ast.While) -> None:
        header = self.cfg.new_block()
        self.cfg.add_edge(self.current, header)
        self.current = header
        self.emit(("eval", node.test))
        truth = _const_truth(node.test)
        body_block = self.cfg.new_block()
        after = self.cfg.new_block()
        else_block = self.cfg.new_block() if node.orelse else None
        if truth is not False:
            self.cfg.add_edge(header, body_block)
        if truth is not True:
            self.cfg.add_edge(header, else_block or after)
        frame = _LoopFrame(header=header, after=after, node=node)
        self.loops.append(frame)
        self.current = body_block
        self.visit_body(node.body)
        self.cfg.add_edge(self.current, header)
        self.loops.pop()
        if else_block is not None:
            self.current = else_block
            self.visit_body(node.orelse)
            self.cfg.add_edge(self.current, after)
        self.current = after
        self.cfg.loops.append((node, frame))

    def visit_For(self, node: ast.For) -> None:
        self.emit(("eval", node.iter))
        header = self.cfg.new_block()
        self.cfg.add_edge(self.current, header)
        body_block = self.cfg.new_block()
        after = self.cfg.new_block()
        else_block = self.cfg.new_block() if node.orelse else None
        self.cfg.add_edge(header, body_block)
        self.cfg.add_edge(header, else_block or after)
        frame = _LoopFrame(header=header, after=after, node=node)
        self.loops.append(frame)
        self.current = body_block
        self.emit(("bind", node.target, node.iter))
        self.visit_body(node.body)
        self.cfg.add_edge(self.current, header)
        self.loops.pop()
        if else_block is not None:
            self.current = else_block
            self.visit_body(node.orelse)
            self.cfg.add_edge(self.current, after)
        self.current = after
        self.cfg.loops.append((node, frame))

    visit_AsyncFor = visit_For

    def visit_Break(self, node: ast.Break) -> None:
        if self.loops:
            frame = self.loops[-1]
            frame.exits.append(self.current)
            self._jump(frame.after)
        else:  # pragma: no cover - invalid python
            self._jump(None)

    def visit_Continue(self, node: ast.Continue) -> None:
        self._jump(self.loops[-1].header if self.loops else None)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.emit(("eval", node.value))
        for frame in self.loops:
            frame.exits.append(self.current)
        self._jump(self.cfg.exit)

    def visit_Raise(self, node: ast.Raise) -> None:
        if node.exc is not None:
            self.emit(("eval", node.exc))
        for frame in self.loops:
            frame.exits.append(self.current)
        for entries in self.handlers:
            for handler in entries:
                self.cfg.add_edge(self.current, handler)
        self._jump(self.cfg.error_exit)

    def visit_Try(self, node: ast.Try) -> None:
        handler_entries = [self.cfg.new_block() for _ in node.handlers]
        after = self.cfg.new_block()
        final_block = self.cfg.new_block() if node.finalbody else None
        target = final_block or after
        for handler in handler_entries:
            self.cfg.add_edge(self.current, handler)
        self.handlers.append(handler_entries)
        self.visit_body(node.body)
        self.handlers.pop()
        self.visit_body(node.orelse)
        self.cfg.add_edge(self.current, target)
        for entry, handler in zip(handler_entries, node.handlers):
            self.current = entry
            if handler.type is not None:
                self.emit(("eval", handler.type))
            if handler.name:
                self.emit(("bindname", handler.name, handler))
            self.visit_body(handler.body)
            self.cfg.add_edge(self.current, target)
        if final_block is not None:
            self.current = final_block
            self.visit_body(node.finalbody)
            self.cfg.add_edge(self.current, after)
        self.current = after

    visit_TryStar = visit_Try

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.emit(("eval", item.context_expr))
            if item.optional_vars is not None:
                self.emit(("bind", item.optional_vars, item.context_expr))
        self.visit_body(node.body)

    visit_AsyncWith = visit_With

    def visit_Match(self, node) -> None:
        self.emit(("eval", node.subject))
        dispatch = self.current
        after = self.cfg.new_block()
        for case in node.cases:
            case_block = self.cfg.new_block()
            self.cfg.add_edge(dispatch, case_block)
            self.current = case_block
            for name in _pattern_names(case.pattern):
                self.emit(("bindname", name, case.pattern))
            if case.guard is not None:
                self.emit(("eval", case.guard))
            self.visit_body(case.body)
            self.cfg.add_edge(self.current, after)
        self.cfg.add_edge(dispatch, after)  # no case matched
        self.current = after


def _pattern_names(pattern) -> List[str]:
    """Names captured by a ``match`` pattern (binds in the scope)."""
    names = []
    for node in ast.walk(pattern):
        capture = getattr(node, "name", None)
        if isinstance(capture, str):
            names.append(capture)
        rest = getattr(node, "rest", None)
        if isinstance(rest, str):
            names.append(rest)
    return names


def build_cfg(stmts: Sequence[ast.stmt]) -> CFG:
    """Lower a statement list (one scope's body) to a control-flow graph."""
    return _CFGBuilder().build(stmts)


# -- generic worklist solver -----------------------------------------------
def solve_forward(cfg: CFG, entry_state, transfer, join):
    """Forward fixpoint over ``cfg``; returns ``{block_index: in_state}``.

    ``transfer(block, state) -> state`` must be monotone and must not
    mutate its input; ``join(a, b) -> state`` merges predecessor
    out-states (``a`` may be ``None`` the first time a block is
    reached). Blocks unreachable from the entry never appear in the
    result, which is how callers distinguish dead code.
    """
    in_states: Dict[int, object] = {cfg.entry.index: entry_state}
    worklist = [cfg.entry]
    while worklist:
        block = worklist.pop()
        out = transfer(block, in_states[block.index])
        for succ in block.succs:
            merged = join(in_states.get(succ.index), out)
            if merged != in_states.get(succ.index):
                in_states[succ.index] = merged
                worklist.append(succ)
    return in_states


# -- scope structure -------------------------------------------------------
def _bound_in_stmts(stmts: Iterable[ast.stmt]) -> Tuple[Set[str], Set[str]]:
    """``(bound, declared_foreign)`` for one scope's own statements.

    ``bound`` is every name the scope binds syntactically — assignment
    targets, loop targets, ``with``/``except``/import aliases, nested
    ``def``/``class`` names, walrus targets — without descending into
    nested scope bodies. ``declared_foreign`` holds names the scope
    declared ``global``/``nonlocal`` (they bind elsewhere).
    """
    bound: Set[str] = set()
    foreign: Set[str] = set()

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
            for deco in node.decorator_list:
                visit(deco)
            if isinstance(node, ast.ClassDef):
                for base in node.bases:
                    visit(base)
                for kw in node.keywords:
                    visit(kw.value)
            else:
                for default in itertools.chain(
                    node.args.defaults,
                    (d for d in node.args.kw_defaults if d is not None),
                ):
                    visit(default)
            return  # never descend into the nested body
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, ast.NamedExpr):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
            visit(node.value)
            return
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            foreign.update(node.names)
        elif isinstance(node, ast.comprehension):
            # comprehension targets live in the comprehension's own
            # implicit scope, not this one
            visit(node.iter)
            for cond in node.ifs:
                visit(cond)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in stmts:
        visit(stmt)
    names = getattr(ast, "MatchAs", None)
    if names is not None:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Match):
                    for case in node.cases:
                        bound.update(_pattern_names(case.pattern))
    return bound - foreign, foreign


@dataclass
class _NestedScope:
    """A nested function/lambda/class body queued for recursive analysis."""

    node: ast.AST
    body: List[ast.stmt]
    params: Tuple[str, ...]
    kind: str  # "function" | "class"
    line: int


def _collect_nested_scopes(stmts: Iterable[ast.stmt]) -> List[_NestedScope]:
    """Nested scopes defined directly in this scope (not transitively)."""
    scopes: List[_NestedScope] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(
                _NestedScope(
                    node=node,
                    body=list(node.body),
                    params=tuple(a.arg for a in _all_args(node.args)),
                    kind="function",
                    line=node.lineno,
                )
            )
            for default in itertools.chain(
                node.args.defaults,
                (d for d in node.args.kw_defaults if d is not None),
            ):
                visit(default)
            return
        if isinstance(node, ast.Lambda):
            scopes.append(
                _NestedScope(
                    node=node,
                    body=[ast.Expr(value=node.body, lineno=node.lineno,
                                   col_offset=node.col_offset)],
                    params=tuple(a.arg for a in _all_args(node.args)),
                    kind="function",
                    line=node.lineno,
                )
            )
            return
        if isinstance(node, ast.ClassDef):
            scopes.append(
                _NestedScope(
                    node=node, body=list(node.body), params=(),
                    kind="class", line=node.lineno,
                )
            )
            for deco in node.decorator_list:
                visit(deco)
            for base in node.bases:
                visit(base)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in stmts:
        visit(stmt)
    return scopes


def _all_args(args: ast.arguments) -> List[ast.arg]:
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg:
        every.append(args.vararg)
    if args.kwarg:
        every.append(args.kwarg)
    return every


# -- the per-scope abstract interpreter ------------------------------------
class ScopeAnalysis:
    """Dataflow analysis of one lexical scope (and, recursively, children).

    State is a product lattice per program point:

    * ``must`` — frozenset of scope-local names definitely assigned on
      every path (meet = intersection);
    * ``may`` — dict mapping names to frozensets of taint tags, joined
      pointwise by union. Tags are ``("untrusted",)`` for values derived
      from taint sources and ``("danger", builtin)`` for values aliasing
      a banned builtin.
    """

    def __init__(
        self,
        body: Sequence[ast.stmt],
        *,
        known: FrozenSet[str],
        banned: FrozenSet[str],
        taint_sources: FrozenSet[str],
        taint_sinks: Dict[str, Tuple[int, ...]],
        enclosing: FrozenSet[str] = frozenset(),
        params: Tuple[str, ...] = (),
        kind: str = "module",
    ) -> None:
        self.body = list(body)
        self.known = known
        self.banned = banned
        self.taint_sources = taint_sources
        self.taint_sinks = taint_sinks
        self.enclosing = enclosing
        self.params = params
        self.kind = kind
        bound, self.declared_foreign = _bound_in_stmts(self.body)
        self.locals: FrozenSet[str] = frozenset(bound | set(params))
        self.cfg = build_cfg(self.body)
        self.findings: List[Finding] = []
        self._reported: Set[tuple] = set()
        self._comp_bound: List[Set[str]] = []
        self.reachable_lines: Set[int] = set()

    # -- driver ------------------------------------------------------------
    def run(self) -> "ScopeAnalysis":
        entry = (frozenset(self.params), {})
        in_states = solve_forward(self.cfg, entry, self._transfer, _join_states)
        reachable = self.cfg.reachable()
        self._report_pass(in_states, reachable)
        self._check_loops(in_states, reachable)
        self._check_unreachable(reachable)
        self._exit_must = None
        exit_state = in_states.get(self.cfg.exit.index)
        if exit_state is not None:
            self._exit_must = exit_state[0]
        self._run_children(reachable)
        return self

    def definitely_assigned_at_exit(self) -> Optional[FrozenSet[str]]:
        """Names assigned on every normally-completing path, or ``None``
        when the scope cannot complete normally (always raises/loops)."""
        return self._exit_must

    def _run_children(self, reachable: Set[int]) -> None:
        child_enclosing = self.enclosing
        if self.kind != "class":
            # class-body names are not visible to methods defined inside
            child_enclosing = frozenset(child_enclosing | self.locals)
        for nested in _collect_nested_scopes(self.body):
            if nested.line not in self.reachable_lines and self.reachable_lines:
                continue  # defined in dead code: can never exist
            child = ScopeAnalysis(
                nested.body,
                known=self.known,
                banned=self.banned,
                taint_sources=self.taint_sources,
                taint_sinks=self.taint_sinks,
                enclosing=child_enclosing,
                params=nested.params,
                kind="class" if nested.kind == "class" else "function",
            ).run()
            self.findings.extend(child.findings)
            self.reachable_lines |= child.reachable_lines

    # -- fixpoint transfer (no reporting) ----------------------------------
    def _transfer(self, block: Block, state):
        must, may = set(state[0]), dict(state[1])
        for element in block.elements:
            self._apply(element, must, may, report=False)
        return (frozenset(must), may)

    # -- reporting pass over reachable blocks ------------------------------
    def _report_pass(self, in_states, reachable: Set[int]) -> None:
        for block in self.cfg.blocks:
            if block.index not in reachable or block.index not in in_states:
                continue
            state = in_states[block.index]
            must, may = set(state[0]), dict(state[1])
            for element in block.elements:
                self._mark_lines(element)
                self._apply(element, must, may, report=True)

    def _mark_lines(self, element: tuple) -> None:
        node = element[1]
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return
        end = getattr(node, "end_lineno", None) or lineno
        self.reachable_lines.update(range(lineno, end + 1))

    # -- element interpretation --------------------------------------------
    def _apply(self, element: tuple, must, may, report: bool) -> None:
        kind = element[0]
        if kind == "stmt":
            self._apply_stmt(element[1], must, may, report)
        elif kind == "eval":
            self._tags(element[1], must, may, report)
        elif kind == "bind":
            _, target, source = element
            tags = self._tags(source, must, may, report=False)
            self._store(target, tags, must, may, report)
        elif kind == "bindname":
            must.add(element[1])
            may[element[1]] = frozenset()

    def _apply_stmt(self, stmt: ast.stmt, must, may, report: bool) -> None:
        if isinstance(stmt, ast.Assign):
            tags = self._tags(stmt.value, must, may, report)
            for target in stmt.targets:
                self._store(target, tags, must, may, report)
        elif isinstance(stmt, ast.AugAssign):
            target_load = ast.copy_location(
                ast.Name(id=stmt.target.id, ctx=ast.Load()), stmt.target
            ) if isinstance(stmt.target, ast.Name) else stmt.target
            old = self._tags(target_load, must, may, report)
            new = self._tags(stmt.value, must, may, report)
            self._store(stmt.target, old | new, must, may, report)
        elif isinstance(stmt, ast.AnnAssign):
            tags = frozenset()
            if stmt.value is not None:
                tags = self._tags(stmt.value, must, may, report)
                self._store(stmt.target, tags, must, may, report)
        elif isinstance(stmt, ast.Expr):
            self._tags(stmt.value, must, may, report)
        elif isinstance(stmt, ast.Assert):
            self._tags(stmt.test, must, may, report)
            if stmt.msg is not None:
                self._tags(stmt.msg, must, may, report)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    must.discard(target.id)
                    may.pop(target.id, None)
                else:
                    self._tags(target, must, may, report)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                name = alias.asname or alias.name.split(".")[0]
                must.add(name)
                may[name] = frozenset()
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in stmt.decorator_list:
                self._tags(deco, must, may, report)
            for default in itertools.chain(
                stmt.args.defaults,
                (d for d in stmt.args.kw_defaults if d is not None),
            ):
                self._tags(default, must, may, report)
            must.add(stmt.name)
            may[stmt.name] = frozenset()
        elif isinstance(stmt, ast.ClassDef):
            for deco in stmt.decorator_list:
                self._tags(deco, must, may, report)
            for base in stmt.bases:
                self._tags(base, must, may, report)
            must.add(stmt.name)
            may[stmt.name] = frozenset()
        # Pass/Global/Nonlocal/Break/Continue: no dataflow effect here.

    # -- abstract expression evaluation ------------------------------------
    def _tags(self, expr, must, may, report: bool) -> FrozenSet[tuple]:
        if expr is None or not isinstance(expr, ast.AST):
            return frozenset()
        if isinstance(expr, ast.Name):
            return self._name_load(expr, must, may, report)
        if isinstance(expr, ast.Constant):
            return frozenset()
        if isinstance(expr, ast.Call):
            func_tags = self._tags(expr.func, must, may, report)
            arg_tags = [self._tags(a, must, may, report) for a in expr.args]
            kw_tags = [
                self._tags(kw.value, must, may, report) for kw in expr.keywords
            ]
            if report:
                self._check_call(expr, func_tags, arg_tags, must)
            return frozenset().union(func_tags, *arg_tags, *kw_tags)
        if isinstance(expr, ast.Attribute):
            return self._tags(expr.value, must, may, report)
        if isinstance(expr, ast.NamedExpr):
            tags = self._tags(expr.value, must, may, report)
            self._store(expr.target, tags, must, may, report)
            return tags
        if isinstance(expr, ast.Lambda):
            tags = frozenset()
            for default in itertools.chain(
                expr.args.defaults,
                (d for d in expr.args.kw_defaults if d is not None),
            ):
                tags |= self._tags(default, must, may, report)
            return tags  # body is a nested scope, analyzed separately
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return self._comp_tags(expr, must, may, report)
        tags = frozenset()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                tags |= self._tags(child, must, may, report)
            elif isinstance(child, ast.keyword):
                tags |= self._tags(child.value, must, may, report)
        return tags

    def _comp_tags(self, expr, must, may, report: bool) -> FrozenSet[tuple]:
        """Comprehensions: targets bind in an implicit nested scope."""
        bound: Set[str] = set()
        for gen in expr.generators:
            for node in ast.walk(gen.target):
                if isinstance(node, ast.Name):
                    bound.add(node.id)
        tags = frozenset()
        for gen in expr.generators:
            tags |= self._tags(gen.iter, must, may, report)
        self._comp_bound.append(bound)
        try:
            for gen in expr.generators:
                for cond in gen.ifs:
                    tags |= self._tags(cond, must, may, report)
            if isinstance(expr, ast.DictComp):
                tags |= self._tags(expr.key, must, may, report)
                tags |= self._tags(expr.value, must, may, report)
            else:
                tags |= self._tags(expr.elt, must, may, report)
        finally:
            self._comp_bound.pop()
        return tags

    def _name_load(self, node: ast.Name, must, may, report) -> FrozenSet[tuple]:
        if not isinstance(node.ctx, ast.Load):
            return frozenset()
        name = node.id
        if any(name in bound for bound in self._comp_bound):
            return frozenset()
        if name in self.declared_foreign:
            return frozenset()  # global/nonlocal: binds in another scope
        if name in self.locals:
            tags = may.get(name, frozenset())
            if name not in must:
                # Maybe-unassigned local: at module level the builtin of
                # the same name shines through, so a half-shadowed banned
                # builtin is still dangerous.
                if name in self.banned:
                    tags = tags | {("danger", name)}
                    self._report(
                        "banned-call",
                        f"use of {name!r} is not allowed in generated code "
                        "(not shadowed on every path)",
                        node, key=("banned-call", node.lineno, name),
                        when=report,
                    )
                elif name in self.taint_sources:
                    tags = tags | {UNTRUSTED}
                elif name not in self.known:
                    self._report(
                        "use-before-def",
                        f"name {name!r} may be read before it is assigned",
                        node, key=("use-before-def", node.lineno, name),
                        when=report,
                    )
            return tags
        if name in self.enclosing:
            return frozenset()
        if name in self.banned:
            self._report(
                "banned-call",
                f"use of {name!r} is not allowed in generated code",
                node, key=("banned-call", node.lineno, name), when=report,
            )
            return frozenset({("danger", name)})
        if name in self.taint_sources:
            return frozenset({UNTRUSTED})
        if name in self.known:
            return frozenset()
        self._report(
            "unknown-name",
            f"name {name!r} is not visible in this scope and is not "
            "provided by the sandbox",
            node, key=("unknown-name", name), when=report,
        )
        return frozenset()

    def _check_call(self, node: ast.Call, func_tags, arg_tags, must) -> None:
        direct = node.func.id if isinstance(node.func, ast.Name) else None
        sink_names: Set[str] = set()
        for tag in func_tags:
            if tag[0] == "danger":
                sink_names.add(tag[1])
                if tag[1] != direct:
                    self._report(
                        "banned-call",
                        f"call flows through an alias of banned builtin "
                        f"{tag[1]!r}",
                        node, key=("banned-call", node.lineno, "alias", tag[1]),
                        when=True,
                    )
        if direct in self.taint_sinks and direct not in must:
            sink_names.add(direct)
        for sink in sink_names:
            for position in self.taint_sinks.get(sink, ()):
                if position < len(arg_tags) and UNTRUSTED in arg_tags[position]:
                    self._report(
                        "taint-flow",
                        f"untrusted data (derived from sandbox inputs) "
                        f"flows into argument {position} of {sink!r}",
                        node, key=("taint-flow", node.lineno, sink, position),
                        when=True,
                    )

    def _store(self, target, tags, must, may, report: bool) -> None:
        if isinstance(target, ast.Name):
            must.add(target.id)
            may[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, tags, must, may, report)
        elif isinstance(target, ast.Starred):
            self._store(target.value, tags, must, may, report)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base_tags = self._tags(target.value, must, may, report)
            if isinstance(target, ast.Subscript):
                self._tags(target.slice, must, may, report)
            root = target.value
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if isinstance(root, ast.Name) and root.id in self.locals:
                may[root.id] = may.get(root.id, frozenset()) | tags | base_tags

    def _report(self, rule, message, node, *, key, when: bool) -> None:
        if not when or key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(
            Finding(rule=rule, message=message, line=getattr(node, "lineno", 0))
        )

    # -- loop-bound analysis -----------------------------------------------
    def _check_loops(self, in_states, reachable: Set[int]) -> None:
        infinite_iters = self._infinite_iter_names()
        for node, frame in self.cfg.loops:
            if frame.header.index not in reachable:
                continue
            exit_reachable = any(
                block.index in reachable for block in frame.exits
            )
            if isinstance(node, ast.While):
                self._check_while(node, exit_reachable)
            else:
                self._check_for(node, exit_reachable, infinite_iters)

    def _check_while(self, node: ast.While, exit_reachable: bool) -> None:
        truth = _const_truth(node.test)
        if truth is False:
            return  # body is unreachable; reported as dead code
        if truth is True and not exit_reachable:
            self.findings.append(
                Finding(
                    rule="unbounded-loop",
                    message="loop condition is constant-true and no "
                    "break/return/raise is reachable",
                    line=node.lineno,
                )
            )
            return
        if truth is None and not exit_reachable:
            test_names = {
                n.id
                for n in ast.walk(node.test)
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
            }
            has_calls = any(
                isinstance(n, (ast.Call, ast.Attribute))
                for n in ast.walk(node.test)
            )
            local_names = test_names & set(self.locals)
            if (
                not has_calls
                and local_names
                and not _mutates_any(node.body, test_names)
            ):
                self.findings.append(
                    Finding(
                        rule="unbounded-loop",
                        message="loop condition reads "
                        f"{sorted(local_names)} but the body never "
                        "changes them and has no break",
                        line=node.lineno,
                    )
                )
                return
        self.findings.append(
            Finding(
                rule="unbounded-work",
                message="loop trip count is not statically bounded; the "
                "sandbox will execute it under a fuel limit",
                line=node.lineno,
                severity="warning",
            )
        )

    def _check_for(self, node, exit_reachable: bool, infinite_iters) -> None:
        call = node.iter
        if not isinstance(call, ast.Call):
            return
        func = call.func
        name = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "itertools"
            and func.attr in _INFINITE_ITERTOOLS
        ):
            name = func.attr
        elif isinstance(func, ast.Name) and func.id in infinite_iters:
            name = infinite_iters[func.id]
        if name is None:
            return
        if name == "repeat" and len(call.args) + len(call.keywords) >= 2:
            return  # repeat(x, times) is bounded
        if not exit_reachable:
            self.findings.append(
                Finding(
                    rule="unbounded-loop",
                    message=f"iteration over itertools.{name}() never "
                    "terminates and the body has no break",
                    line=node.lineno,
                )
            )

    def _infinite_iter_names(self) -> Dict[str, str]:
        """Local aliases of infinite itertools constructors."""
        aliases: Dict[str, str] = {}
        for stmt in self.body:
            if isinstance(stmt, ast.ImportFrom) and stmt.module == "itertools":
                for alias in stmt.names:
                    if alias.name in _INFINITE_ITERTOOLS:
                        aliases[alias.asname or alias.name] = alias.name
        return aliases

    # -- dead code -----------------------------------------------------------
    def _check_unreachable(self, reachable: Set[int]) -> None:
        reported_lines: Set[int] = set()
        for block in self.cfg.blocks:
            if block.index in reachable or not block.elements:
                continue
            # Report once per dead region: only blocks not dominated by
            # another unreachable block.
            if any(pred.index not in reachable for pred in block.preds):
                continue
            node = block.elements[0][1]
            lineno = getattr(node, "lineno", 0)
            if lineno and lineno not in reported_lines:
                reported_lines.add(lineno)
                self.findings.append(
                    Finding(
                        rule="unreachable-code",
                        message="this code can never execute (no path "
                        "from the program entry reaches it)",
                        line=lineno,
                        severity="warning",
                    )
                )


def _mutates_any(body: Sequence[ast.stmt], names: Set[str]) -> bool:
    """True if the loop body could change any of ``names``.

    Conservative: direct stores/deletes, augmented assignment, a method
    call on the name, or the name appearing anywhere inside a call
    (callees can mutate arguments) all count as potential mutation.
    """
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id in names:
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    return True
            elif isinstance(node, ast.Call):
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Name) and inner.id in names:
                        return True
    return False


def _join_states(existing, incoming):
    """Join for the product lattice: must ∩, may ∪ (pointwise)."""
    if existing is None:
        return (incoming[0], dict(incoming[1]))
    must = existing[0] & incoming[0]
    may = dict(existing[1])
    for name, tags in incoming[1].items():
        may[name] = may.get(name, frozenset()) | tags
    if must == existing[0] and may == existing[1]:
        return existing
    return (must, may)


# -- program-level driver ---------------------------------------------------
@dataclass
class ProgramReport:
    """Everything the flow-sensitive passes learned about one program."""

    findings: List[Finding]
    reachable_lines: Set[int]
    definitely_assigned_at_exit: Optional[FrozenSet[str]]


def analyze_program(
    tree: ast.Module,
    *,
    known: Iterable[str],
    banned: Iterable[str],
    taint_sources: Iterable[str],
    taint_sinks: Dict[str, Tuple[int, ...]],
) -> ProgramReport:
    """Run every CFG-based analysis over a parsed module.

    Returns the findings (banned-call, use-before-def, unknown-name,
    taint-flow, unbounded-loop errors; unreachable-code and
    unbounded-work warnings), the set of reachable source lines (for
    gating syntactic checks), and the definitely-assigned set at the
    module's normal exit (for output-contract checks); the last is
    ``None`` when the module cannot complete normally.
    """
    analysis = ScopeAnalysis(
        tree.body,
        known=frozenset(known),
        banned=frozenset(banned),
        taint_sources=frozenset(taint_sources),
        taint_sinks=dict(taint_sinks),
    ).run()
    return ProgramReport(
        findings=analysis.findings,
        reachable_lines=analysis.reachable_lines,
        definitely_assigned_at_exit=analysis.definitely_assigned_at_exit(),
    )
