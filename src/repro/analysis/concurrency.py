"""Concurrency-safety audit for the serving subsystem.

The upcoming multi-tenant async gateway will multiplex one
:class:`~repro.serving.engine.BatchedGenerator`, one
:class:`~repro.serving.prefix.PrefixCache`, and preallocated KV slabs
across concurrent requests. Every one of those classes mutates plain
instance attributes with no synchronization — fine today (the serving
loop is single-threaded), a data race the moment two request handlers
interleave. This module makes that surface auditable *before* the
gateway lands:

* :func:`shared_state_report` walks source trees and inventories, per
  class, which ``self.*`` attributes are written from which methods
  (assignments, augmented assignments, subscript stores, and calls to
  mutating container methods like ``append``/``pop``), skipping
  ``__init__``/``__post_init__`` construction. The result is a
  machine-readable dict — ``python -m repro.analysis.lint
  --shared-state src/repro/serving`` prints it as JSON.
* :func:`concurrency_findings` backs two lint rules that gate the
  gateway's code (both ``# repro: noqa``-able, both scoped to ``async
  def`` bodies so today's single-threaded serving code stays clean):

  - ``shared-state-mutation`` — an ``async def`` writes a ``self.*``
    attribute; between any two awaits another task may observe the
    half-updated object, so the write must be guarded (lock, actor
    queue) or confined to task-local state;
  - ``blocking-call-in-async`` — an ``async def`` calls something that
    blocks the event loop (``time.sleep``, ``open``, ``input``,
    ``subprocess.*``, ``os.system``, ``requests.*``); use the async
    equivalent or push the work to a thread.

This module deliberately does not import :mod:`repro.analysis.lint`
(which must stay import-free from ``repro.analysis`` so ``python -m``
execution never double-imports it); lint imports *us*.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.dataflow import MUTATOR_METHODS
from repro.analysis.findings import Finding

#: module names whose calls block the event loop wholesale
_BLOCKING_MODULES = frozenset({"subprocess", "requests"})

#: plain builtins that block (console/file IO)
_BLOCKING_BUILTINS = frozenset({"open", "input"})


@dataclass(frozen=True)
class SharedWrite:
    """One write to ``self.<attribute>`` from a (non-init) method."""

    attribute: str
    method: str
    line: int
    kind: str  # "assign" | "augassign" | "subscript" | "mutating-call"


def audit_class(node: ast.ClassDef) -> List[SharedWrite]:
    """Inventory ``self.*`` writes in one class body, outside __init__."""
    writes: List[SharedWrite] = []
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name in ("__init__", "__post_init__"):
            continue
        writes.extend(_method_writes(item))
    return writes


def _method_writes(method) -> List[SharedWrite]:
    writes: List[SharedWrite] = []

    def record(attribute: Optional[str], line: int, kind: str) -> None:
        if attribute is not None:
            writes.append(
                SharedWrite(
                    attribute=attribute, method=method.name, line=line,
                    kind=kind,
                )
            )

    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    record(_self_root(target), target.lineno, "assign")
                elif isinstance(target, ast.Subscript):
                    record(_self_root(target.value), target.lineno, "subscript")
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Attribute):
                record(_self_root(node.target), node.target.lineno, "augassign")
            elif isinstance(node.target, ast.Subscript):
                record(
                    _self_root(node.target.value), node.target.lineno,
                    "subscript",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                record(_self_root(func.value), node.lineno, "mutating-call")
    return writes


def _self_root(node: ast.expr) -> Optional[str]:
    """``stats`` for ``self.stats[...]``/``self.stats.hits``; else None."""
    chain: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and chain:
        return chain[-1]
    return None


def audit_source(code: str, path: str = "<string>") -> List[dict]:
    """Per-class shared-state entries for one module (see report schema)."""
    try:
        tree = ast.parse(code)
    except SyntaxError:
        return []
    entries: List[dict] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        writes = audit_class(node)
        if not writes:
            continue
        by_attr: Dict[str, List[dict]] = {}
        for write in sorted(writes, key=lambda w: (w.attribute, w.line)):
            by_attr.setdefault(write.attribute, []).append(
                {"method": write.method, "line": write.line, "kind": write.kind}
            )
        entries.append(
            {
                "class": node.name,
                "path": path,
                "line": node.lineno,
                "shared_attributes": by_attr,
            }
        )
    return entries


def shared_state_report(paths: Sequence[Path]) -> dict:
    """Machine-readable shared-state inventory over files/directories.

    Schema::

        {"files_scanned": int,
         "classes": [{"class", "path", "line",
                      "shared_attributes": {attr: [{"method", "line",
                                                    "kind"}, ...]}}]}
    """
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    classes: List[dict] = []
    for file in files:
        classes.extend(
            audit_source(file.read_text(encoding="utf-8"), path=str(file))
        )
    classes.sort(key=lambda entry: (entry["path"], entry["line"]))
    return {"files_scanned": len(files), "classes": classes}


# -- lint rules over async code --------------------------------------------
def concurrency_findings(tree: ast.Module, path: str) -> List[Finding]:
    """``shared-state-mutation`` + ``blocking-call-in-async`` findings."""
    findings: List[Finding] = []
    sleep_aliases = {
        alias.asname or alias.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ImportFrom) and node.module == "time"
        for alias in node.names
        if alias.name == "sleep"
    }
    for func in ast.walk(tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for write in _method_writes(func):
            findings.append(
                Finding(
                    rule="shared-state-mutation",
                    message=f"async def {func.name!r} mutates "
                    f"self.{write.attribute} ({write.kind}); another task "
                    "can interleave at any await — guard it with a lock or "
                    "confine it to task-local state",
                    line=write.line,
                    source=path,
                )
            )
        for node in ast.walk(func):
            if isinstance(node, ast.AsyncFunctionDef) and node is not func:
                continue  # nested async defs report themselves
            if not isinstance(node, ast.Call):
                continue
            reason = _blocking_reason(node.func, sleep_aliases)
            if reason is not None:
                findings.append(
                    Finding(
                        rule="blocking-call-in-async",
                        message=f"async def {func.name!r} calls {reason}, "
                        "which blocks the event loop; use an async "
                        "equivalent or run it in a thread",
                        line=node.lineno,
                        source=path,
                    )
                )
    return findings


def _blocking_reason(func: ast.expr, sleep_aliases) -> Optional[str]:
    if isinstance(func, ast.Name):
        if func.id in _BLOCKING_BUILTINS:
            return f"{func.id}()"
        if func.id in sleep_aliases:
            return "time.sleep()"
        return None
    if isinstance(func, ast.Attribute):
        root = func
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name):
            if root.id == "time" and func.attr == "sleep":
                return "time.sleep()"
            if root.id == "os" and func.attr == "system":
                return "os.system()"
            if root.id in _BLOCKING_MODULES:
                return f"{root.id}.{func.attr}()"
    return None
