"""A repo-wide custom linter with project-specific rules.

Run as ``python -m repro.analysis.lint src/ tests/``. Exit status is 0
when the tree is clean and 1 when any finding survives suppression.

Rules (each individually suppressible with ``# repro: noqa[RULE]`` on
the offending line):

* ``mutable-default``      — a list/dict/set display or constructor call
  as a default argument value;
* ``bare-except``          — ``except:`` with no exception class;
* ``future-annotations``   — a module that uses annotations without
  ``from __future__ import annotations`` (``__init__.py`` re-export
  modules are exempt);
* ``numpy-random``         — direct ``np.random``/``numpy.random`` calls
  outside ``utils/rng.py`` (all *library* randomness must flow through
  :class:`~repro.utils.rng.SeededRNG` for reproducibility; tests and
  benchmarks may build fixture arrays directly and are exempt);
* ``exec-eval``            — ``exec()``/``eval()`` calls outside the
  CodexDB sandbox module (the one audited place allowed to run
  generated code);
* ``wall-clock``           — direct ``time.sleep``/``time.monotonic``
  calls outside ``reliability/clock.py`` (all waiting and timeout logic
  must flow through a :class:`~repro.reliability.clock.Clock` so it is
  testable on a virtual clock);
* ``atomic-write``         — ``open()``/``.open()`` in a
  write/append/create mode, or ``.write_text()``/``.write_bytes()``,
  outside ``repro/durability/`` (file writes must go through the atomic
  temp-file + fsync + rename helpers of :mod:`repro.durability.io` so a
  crash can never leave a torn file; tests and benchmarks are exempt);
* ``per-prompt-loop``      — a ``.complete()`` or ``.read()`` call
  inside a loop (or comprehension) in the application subsystems
  (``codexdb``, ``text2sql``, ``wrangle``, ``neuraldb``); hot
  per-prompt loops should batch through ``complete_batch`` /
  :func:`repro.serving.complete_many` (or the reader's ``read_batch``)
  so prompts share vectorized model forwards;
* ``concat-in-loop``       — ``np.concatenate`` inside a loop (or
  comprehension) in the model/serving hot paths (``nn``,
  ``generation``, ``serving``, ``models``); growing an array by
  concatenation per iteration is O(n²) traffic — write into a
  preallocated slab (:class:`repro.serving.KVCache`-style) and
  suppress the rare amortized concat explicitly;
* ``shared-state-mutation`` — an ``async def`` writes a ``self.*``
  attribute (assignment, augmented assignment, subscript store, or a
  mutating container-method call); between any two awaits another task
  can observe the half-updated object, so the write must be guarded or
  confined to task-local state (gates the upcoming async gateway;
  today's single-threaded serving code has no async defs and is
  vacuously clean);
* ``blocking-call-in-async`` — an ``async def`` calls something that
  blocks the event loop (``time.sleep``, ``open``, ``input``,
  ``subprocess.*``, ``os.system``, ``requests.*``).

Both concurrency rules are implemented in
:mod:`repro.analysis.concurrency`, which also produces the
machine-readable shared-state report behind ``--shared-state``.

CLI flags: ``--format json`` emits findings as a JSON array (stable
CI-diffable ordering by path, then line, then rule — the same order as
text output); ``--rules a,b`` lints only the named rules;
``--shared-state`` prints the shared-state inventory for the given
paths as JSON instead of linting.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from pathlib import Path
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.concurrency import concurrency_findings, shared_state_report
from repro.analysis.findings import Finding

RULE_NAMES = (
    "mutable-default",
    "bare-except",
    "future-annotations",
    "numpy-random",
    "exec-eval",
    "wall-clock",
    "atomic-write",
    "per-prompt-loop",
    "concat-in-loop",
    "shared-state-mutation",
    "blocking-call-in-async",
)

#: files allowed to break one specific rule, by path suffix
_RULE_EXEMPT_SUFFIXES = {
    "numpy-random": ("utils/rng.py",),
    "exec-eval": ("codexdb/sandbox.py",),
    "wall-clock": ("reliability/clock.py",),
}

#: directories (path components) exempt from one specific rule
_RULE_EXEMPT_DIRS = {
    "numpy-random": ("tests", "benchmarks"),
    "atomic-write": ("durability", "tests", "benchmarks", "examples"),
}

#: directories (path components) a rule applies to *exclusively*
_RULE_ONLY_DIRS = {
    "per-prompt-loop": ("codexdb", "text2sql", "wrangle", "neuraldb"),
    "concat-in-loop": ("nn", "generation", "serving", "models"),
}

_NOQA_PATTERN = re.compile(r"#\s*repro:\s*noqa\[([a-z\-,\s]+)\]")

_MUTABLE_CONSTRUCTORS = ("list", "dict", "set")


def lint_source(
    code: str,
    path: str = "<string>",
    rules: Optional[FrozenSet[str]] = None,
) -> List[Finding]:
    """Lint one module's source; suppressed findings are dropped.

    ``rules`` restricts the checks to the named subset (``None`` means
    all of :data:`RULE_NAMES`); syntax errors are always reported.
    """
    try:
        tree = ast.parse(code)
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax",
                message=f"module does not parse: {exc.msg}",
                line=exc.lineno or 0,
                source=path,
            )
        ]
    enabled = frozenset(RULE_NAMES) if rules is None else rules
    findings: List[Finding] = []
    findings += _check_mutable_defaults(tree, path)
    findings += _check_bare_except(tree, path)
    findings += _check_future_annotations(tree, path)
    if not _exempt(path, "numpy-random"):
        findings += _check_numpy_random(tree, path)
    if not _exempt(path, "exec-eval"):
        findings += _check_exec_eval(tree, path)
    if not _exempt(path, "wall-clock"):
        findings += _check_wall_clock(tree, path)
    if not _exempt(path, "atomic-write"):
        findings += _check_atomic_write(tree, path)
    if _applies(path, "per-prompt-loop"):
        findings += _check_per_prompt_loop(tree, path)
    if _applies(path, "concat-in-loop"):
        findings += _check_concat_in_loop(tree, path)
    findings += concurrency_findings(tree, path)
    suppressed = _suppressions(code)
    return sorted(
        (
            f
            for f in findings
            if f.rule in enabled
            and (f.line, f.rule) not in suppressed
            and (f.line, "*") not in suppressed
        ),
        key=lambda f: (f.line, f.rule),
    )


def lint_paths(
    paths: Sequence[Path], rules: Optional[FrozenSet[str]] = None
) -> List[Finding]:
    """Lint every ``*.py`` file under the given files/directories.

    Findings come back stably sorted by (path, line, rule) so repeated
    runs diff cleanly in CI.
    """
    findings: List[Finding] = []
    for path in _python_files(paths):
        findings += lint_source(
            path.read_text(encoding="utf-8"), path=str(path), rules=rules
        )
    return sorted(findings, key=lambda f: (f.source or "", f.line, f.rule))


def _python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def _exempt(path: str, rule: str) -> bool:
    normalized = path.replace("\\", "/")
    if any(
        normalized.endswith(suffix)
        for suffix in _RULE_EXEMPT_SUFFIXES.get(rule, ())
    ):
        return True
    parts = normalized.split("/")
    return any(d in parts for d in _RULE_EXEMPT_DIRS.get(rule, ()))


def _applies(path: str, rule: str) -> bool:
    """True when a directory-scoped rule covers ``path`` at all."""
    only = _RULE_ONLY_DIRS.get(rule)
    if only is None:
        return True
    parts = path.replace("\\", "/").split("/")
    return any(d in parts for d in only)


def _suppressions(code: str) -> set:
    """(line, rule) pairs silenced by ``# repro: noqa[rule, ...]``."""
    suppressed = set()
    for lineno, line in enumerate(code.splitlines(), start=1):
        match = _NOQA_PATTERN.search(line)
        if match:
            for rule in match.group(1).split(","):
                suppressed.add((lineno, rule.strip()))
    return suppressed


# -- rules -----------------------------------------------------------------
def _check_mutable_defaults(tree: ast.Module, path: str) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_value(default):
                findings.append(
                    Finding(
                        rule="mutable-default",
                        message=f"function {node.name!r} has a mutable "
                        "default argument (shared across calls); use None "
                        "and create it in the body",
                        line=default.lineno,
                        source=path,
                    )
                )
    return findings


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


def _check_bare_except(tree: ast.Module, path: str) -> List[Finding]:
    return [
        Finding(
            rule="bare-except",
            message="bare 'except:' swallows SystemExit/KeyboardInterrupt; "
            "name the exception class",
            line=node.lineno,
            source=path,
        )
        for node in ast.walk(tree)
        if isinstance(node, ast.ExceptHandler) and node.type is None
    ]


def _check_future_annotations(tree: ast.Module, path: str) -> List[Finding]:
    if Path(path).name == "__init__.py":
        return []
    if not _uses_annotations(tree):
        return []
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            if any(alias.name == "annotations" for alias in node.names):
                return []
    return [
        Finding(
            rule="future-annotations",
            message="module uses annotations without "
            "'from __future__ import annotations'",
            line=1,
            source=path,
        )
    ]


def _uses_annotations(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None:
                return True
            all_args = (
                node.args.args
                + node.args.posonlyargs
                + node.args.kwonlyargs
                + [a for a in (node.args.vararg, node.args.kwarg) if a]
            )
            if any(arg.annotation is not None for arg in all_args):
                return True
    return False


def _check_numpy_random(tree: ast.Module, path: str) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _is_numpy_random_attr(node.func):
            findings.append(
                Finding(
                    rule="numpy-random",
                    message="direct numpy.random call; route randomness "
                    "through repro.utils.rng.SeededRNG",
                    line=node.lineno,
                    source=path,
                )
            )
    return findings


def _is_numpy_random_attr(node: ast.expr) -> bool:
    """True for attribute chains passing through ``np.random``."""
    while isinstance(node, ast.Attribute):
        if (
            node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        ):
            return True
        node = node.value
    return False


def _check_exec_eval(tree: ast.Module, path: str) -> List[Finding]:
    return [
        Finding(
            rule="exec-eval",
            message=f"{node.func.id}() outside the sandbox module; only "
            "repro.codexdb.sandbox may run dynamic code",
            line=node.lineno,
            source=path,
        )
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("exec", "eval")
    ]


_WALL_CLOCK_NAMES = ("sleep", "monotonic")


def _check_wall_clock(tree: ast.Module, path: str) -> List[Finding]:
    imported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_NAMES:
                    imported.add(alias.asname or alias.name)
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        direct = (
            isinstance(func, ast.Attribute)
            and func.attr in _WALL_CLOCK_NAMES
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        )
        via_import = isinstance(func, ast.Name) and func.id in imported
        if direct or via_import:
            findings.append(
                Finding(
                    rule="wall-clock",
                    message="direct wall-clock call; route sleeps and "
                    "timeouts through repro.reliability.clock so they run "
                    "on a virtual clock in tests",
                    line=node.lineno,
                    source=path,
                )
            )
    return findings


def _check_atomic_write(tree: ast.Module, path: str) -> List[Finding]:
    """Flag non-atomic file writes.

    Catches ``open()``/``.open()`` calls whose mode writes, appends, or
    creates, plus the ``Path.write_text``/``Path.write_bytes`` shortcuts
    — every one replaces a file non-atomically, so a crash mid-write can
    leave a torn file behind.
    """
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            findings.append(
                Finding(
                    rule="atomic-write",
                    message=f".{func.attr}(...) replaces the file "
                    "non-atomically; route file writes through the atomic "
                    "temp-file + fsync + rename helpers in "
                    "repro.durability.io",
                    line=node.lineno,
                    source=path,
                )
            )
            continue
        is_open = isinstance(func, ast.Name) and func.id == "open"
        is_method_open = isinstance(func, ast.Attribute) and func.attr == "open"
        if not (is_open or is_method_open):
            continue
        mode = None
        position = 1 if is_open else 0  # Path.open takes mode first
        if len(node.args) > position:
            mode = node.args[position]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and any(flag in mode.value for flag in "wax+")
        ):
            findings.append(
                Finding(
                    rule="atomic-write",
                    message=f"open(..., {mode.value!r}) writes without "
                    "crash safety; route file writes through the atomic "
                    "temp-file + fsync + rename helpers in "
                    "repro.durability.io",
                    line=node.lineno,
                    source=path,
                )
            )
    return findings


_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


#: per-generation methods the rule flags, with the batched alternative
#: the message points at.
_PER_PROMPT_CALLS = {
    "complete": "complete_batch / repro.serving.complete_many",
    "read": "the reader's read_batch",
}


def _check_per_prompt_loop(tree: ast.Module, path: str) -> List[Finding]:
    """Flag per-prompt ``.complete()``/``.read()`` calls inside loops."""
    seen = set()
    findings = []
    for loop in ast.walk(tree):
        if not isinstance(loop, _LOOP_NODES):
            continue
        for node in ast.walk(loop):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _PER_PROMPT_CALLS
            ):
                continue
            key = (node.lineno, node.col_offset)
            if key in seen:
                # Nested loops walk the same call twice; report it once.
                continue
            seen.add(key)
            batched = _PER_PROMPT_CALLS[node.func.attr]
            findings.append(
                Finding(
                    rule="per-prompt-loop",
                    message=f"per-prompt {node.func.attr}() call inside "
                    f"a loop; batch it through {batched} so prompts "
                    "share vectorized model forwards",
                    line=node.lineno,
                    source=path,
                )
            )
    return findings


def _check_concat_in_loop(tree: ast.Module, path: str) -> List[Finding]:
    """Flag ``np.concatenate`` calls issued from inside a loop.

    The pattern this catches is the per-token KV-cache growth bug:
    appending one column per decode step via concatenation copies the
    whole array every iteration. Loop-*carried* concatenation that is
    genuinely amortized (once per admission wave, not per token) must
    say so with ``# repro: noqa[concat-in-loop]``.
    """
    seen = set()
    findings = []
    for loop in ast.walk(tree):
        if not isinstance(loop, _LOOP_NODES):
            continue
        for node in ast.walk(loop):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "concatenate"
            ):
                continue
            key = (node.lineno, node.col_offset)
            if key in seen:
                # Nested loops walk the same call twice; report it once.
                continue
            seen.add(key)
            findings.append(
                Finding(
                    rule="concat-in-loop",
                    message="np.concatenate inside a loop copies the whole "
                    "array per iteration (O(n²) traffic); write into a "
                    "preallocated slab (repro.serving.KVCache-style) "
                    "instead",
                    line=node.lineno,
                    source=path,
                )
            )
    return findings


# -- CLI -------------------------------------------------------------------
_USAGE = (
    "usage: python -m repro.analysis.lint [--format text|json] "
    "[--rules a,b] [--shared-state] <path> [<path> ...]"
)


def main(argv: Iterable[str] = ()) -> int:
    """Lint the given paths; print findings and return the exit status."""
    raw = list(argv) or sys.argv[1:]
    fmt = "text"
    rules: Optional[FrozenSet[str]] = None
    want_shared_state = False
    positional: List[str] = []
    i = 0
    while i < len(raw):
        arg = raw[i]
        if arg == "--format":
            if i + 1 >= len(raw) or raw[i + 1] not in ("text", "json"):
                print(_USAGE)
                return 2
            fmt = raw[i + 1]
            i += 2
        elif arg == "--rules":
            if i + 1 >= len(raw):
                print(_USAGE)
                return 2
            requested = frozenset(
                name.strip() for name in raw[i + 1].split(",") if name.strip()
            )
            unknown = requested - frozenset(RULE_NAMES)
            if unknown or not requested:
                print(f"unknown rule(s): {', '.join(sorted(unknown)) or '(none given)'}")
                print(f"known rules: {', '.join(RULE_NAMES)}")
                return 2
            rules = requested
            i += 1 + 1
        elif arg == "--shared-state":
            want_shared_state = True
            i += 1
        elif arg.startswith("-"):
            print(_USAGE)
            return 2
        else:
            positional.append(arg)
            i += 1
    if not positional:
        print(_USAGE)
        return 2
    paths = [Path(p) for p in positional]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path(s): {', '.join(map(str, missing))}")
        return 2
    if want_shared_state:
        print(json.dumps(shared_state_report(paths), indent=2, sort_keys=True))
        return 0
    findings = lint_paths(paths, rules=rules)
    if fmt == "json":
        print(
            json.dumps(
                [
                    {
                        "path": f.source,
                        "line": f.line,
                        "rule": f.rule,
                        "severity": f.severity,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
        return 1 if findings else 0
    for finding in findings:
        print(finding.render())
    checked = len(_python_files(paths))
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"repro-lint: {checked} file(s) checked, {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
