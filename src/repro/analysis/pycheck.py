"""Static safety and correctness analysis for generated Python programs.

CodexDB executes model-generated code, and the CodexDB paper stresses
that such code must be vetted *before* it touches data. This pass
parses the program (never executing it), lowers it to a control-flow
graph via :mod:`repro.analysis.dataflow`, and rejects:

* imports outside a small allowlist (``time``, ``math``,
  ``collections``, ``itertools``) — only when the import is reachable;
* sandbox-escape attribute chains (``__class__``, ``__globals__``,
  ``__subclasses__``, ...) in reachable code;
* *reachable, unshadowed* uses of introspection/IO builtins
  (``getattr``, ``eval``, ``exec``, ``open``, ...) — a program that
  assigns its own ``open = 0`` counter, or mentions ``eval`` only in a
  branch that can never run, is accepted;
* taint flows from sandbox inputs (``tables``) into dangerous sink
  arguments (:data:`TAINT_SINKS`), including flows through aliases of
  banned builtins (``g = getattr; g(...)``);
* loops that provably cannot terminate (``unbounded-loop`` errors) —
  beyond literal ``while True``, this catches conditions whose names
  the body never mutates and iteration over infinite ``itertools``
  constructors. Loops that *might* be unbounded get an
  ``unbounded-work`` warning that the sandbox converts into a fuel
  limit instead of a rejection;
* reads of names that are not definitely assigned in their scope
  (``use-before-def``), with proper scoping — a name bound only inside
  a nested ``def`` is *not* visible at module level;
* programs that do not assign the ``result``/``columns`` output
  contract on every normally-completing path (path-sensitive: a
  ``try``/``except`` where both arms assign ``result`` satisfies it).

Findings carry a severity: ``"error"`` findings block the artifact,
``"warning"`` findings (``unreachable-code``, ``unbounded-work``) are
advisory. :func:`assert_safe` raises only when errors are present and
attaches the full finding list for callers that want the warnings.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.analysis.dataflow import ProgramReport, analyze_program
from repro.analysis.findings import (
    Finding,
    error_findings,
    render_findings,
)
from repro.errors import StaticAnalysisError

#: modules generated programs may import (consulted by the sandbox's
#: guarded importer as well)
IMPORT_ALLOWLIST: FrozenSet[str] = frozenset(
    {"time", "math", "collections", "itertools"}
)

#: dunder attributes that open sandbox escapes via object introspection
BANNED_ATTRIBUTES: FrozenSet[str] = frozenset(
    {
        "__class__", "__globals__", "__subclasses__", "__bases__",
        "__mro__", "__code__", "__closure__", "__func__", "__self__",
        "__builtins__", "__getattribute__", "__dict__", "__init__",
        "__reduce__", "__reduce_ex__",
    }
)

#: builtins that defeat static vetting when actually used (dynamic
#: attribute access, code execution, file IO); reachable unshadowed
#: loads are errors, and values aliasing them carry a danger taint
BANNED_NAMES: FrozenSet[str] = frozenset(
    {
        "getattr", "setattr", "delattr", "eval", "exec", "compile",
        "open", "input", "vars", "globals", "locals", "__import__",
        "breakpoint", "exit", "quit",
    }
)

#: names whose values are untrusted at program entry (sandbox inputs;
#: generated programs receive the user's tables through ``tables``)
TAINT_SOURCES: FrozenSet[str] = frozenset({"tables"})

#: dangerous sinks: callable name -> positional argument indices that
#: must not receive untrusted data (attribute names for ``getattr``
#: family, code payloads for ``eval``/``exec``/``compile``, module
#: names for ``__import__``, paths for ``open``)
TAINT_SINKS: Dict[str, Tuple[int, ...]] = {
    "getattr": (1,),
    "setattr": (1,),
    "delattr": (1,),
    "eval": (0,),
    "exec": (0,),
    "compile": (0,),
    "__import__": (0,),
    "open": (0,),
}

#: names the sandbox provides to generated programs (safe builtins plus
#: the ``tables`` input binding)
DEFAULT_KNOWN_NAMES: FrozenSet[str] = frozenset(
    {
        "len", "sum", "min", "max", "sorted", "list", "dict", "set",
        "tuple", "str", "int", "float", "bool", "range", "enumerate",
        "zip", "abs", "round", "True", "False", "None", "tables",
    }
)

#: variables a generated program must leave behind
OUTPUT_CONTRACT = ("result", "columns")


def check_python(
    code: str,
    known_names: Iterable[str] = DEFAULT_KNOWN_NAMES,
    allowed_imports: FrozenSet[str] = IMPORT_ALLOWLIST,
    require_contract: bool = True,
) -> List[Finding]:
    """Analyze ``code`` and return all findings (no errors means safe).

    The returned list mixes ``"error"`` and ``"warning"`` severities;
    use :func:`repro.analysis.findings.error_findings` (or
    :func:`assert_safe`) to decide acceptance.
    """
    try:
        tree = ast.parse(code, mode="exec")
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax",
                message=f"program does not parse: {exc.msg}",
                line=exc.lineno or 0,
            )
        ]
    report = analyze_program(
        tree,
        known=frozenset(known_names),
        banned=BANNED_NAMES,
        taint_sources=TAINT_SOURCES,
        taint_sinks=TAINT_SINKS,
    )
    findings = list(report.findings)
    findings.extend(_check_imports(tree, allowed_imports, report.reachable_lines))
    findings.extend(_check_attributes(tree, report.reachable_lines))
    if require_contract:
        findings.extend(_check_contract(report))
    return sorted(findings, key=lambda f: (f.line, f.rule, f.message))


def assert_safe(
    code: str,
    known_names: Iterable[str] = DEFAULT_KNOWN_NAMES,
    allowed_imports: FrozenSet[str] = IMPORT_ALLOWLIST,
    require_contract: bool = True,
) -> List[Finding]:
    """Raise :class:`StaticAnalysisError` if ``code`` has error findings.

    Warning-severity findings do not block; they are returned so callers
    (e.g. the sandbox's fuel policy) can act on them.
    """
    findings = check_python(code, known_names, allowed_imports, require_contract)
    errors = error_findings(findings)
    if errors:
        raise StaticAnalysisError(
            "generated program rejected by static analysis:\n"
            + render_findings(errors),
            findings=findings,
        )
    return findings


# -- syntactic passes, gated by CFG reachability ---------------------------
def _check_imports(
    tree: ast.Module, allowed: FrozenSet[str], reachable_lines: Set[int]
) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if getattr(node, "lineno", None) not in reachable_lines:
            continue  # dead code cannot import anything
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root not in allowed:
                    findings.append(
                        Finding(
                            rule="banned-import",
                            message=f"import of {alias.name!r} is not allowed "
                            f"(allowlist: {sorted(allowed)})",
                            line=node.lineno,
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if node.level or root not in allowed:
                findings.append(
                    Finding(
                        rule="banned-import",
                        message=f"import from {node.module or '.'!r} is not "
                        f"allowed (allowlist: {sorted(allowed)})",
                        line=node.lineno,
                    )
                )
    return findings


def _check_attributes(
    tree: ast.Module, reachable_lines: Set[int]
) -> List[Finding]:
    return [
        Finding(
            rule="banned-attribute",
            message=f"access to attribute {node.attr!r} can escape the sandbox",
            line=node.lineno,
        )
        for node in ast.walk(tree)
        if isinstance(node, ast.Attribute)
        and node.attr in BANNED_ATTRIBUTES
        and node.lineno in reachable_lines
    ]


def _check_contract(report: ProgramReport) -> List[Finding]:
    assigned = report.definitely_assigned_at_exit
    if assigned is None:
        # the program cannot complete normally (every path raises):
        # nothing is ever left behind
        assigned = frozenset()
    return [
        Finding(
            rule="output-contract",
            message=f"variable {name!r} is not assigned on every path",
        )
        for name in OUTPUT_CONTRACT
        if name not in assigned
    ]
