"""Static safety and correctness analysis for generated Python programs.

CodexDB executes model-generated code, and the CodexDB paper stresses
that such code must be vetted *before* it touches data. This pass walks
the program's AST (never executing it) and rejects:

* imports outside a small allowlist (``time``, ``math``,
  ``collections``, ``itertools``);
* sandbox-escape attribute chains (``__class__``, ``__globals__``,
  ``__subclasses__``, ...);
* calls to introspection/IO primitives (``getattr``, ``eval``,
  ``exec``, ``open``, ...);
* ``while True`` loops with no reachable ``break`` (unbounded work);
* references to names that are neither bound by the program nor part
  of the sandbox namespace;
* programs that do not assign the ``result``/``columns`` output
  contract on every execution path.

Every violation becomes a :class:`~repro.analysis.findings.Finding`
with the offending line number; :func:`assert_safe` bundles them into a
:class:`~repro.errors.StaticAnalysisError`.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterable, List, Sequence, Set

from repro.analysis.findings import Finding, render_findings
from repro.errors import StaticAnalysisError

#: modules generated programs may import (consulted by the sandbox's
#: guarded importer as well)
IMPORT_ALLOWLIST: FrozenSet[str] = frozenset(
    {"time", "math", "collections", "itertools"}
)

#: dunder attributes that open sandbox escapes via object introspection
BANNED_ATTRIBUTES: FrozenSet[str] = frozenset(
    {
        "__class__", "__globals__", "__subclasses__", "__bases__",
        "__mro__", "__code__", "__closure__", "__func__", "__self__",
        "__builtins__", "__getattribute__", "__dict__", "__init__",
        "__reduce__", "__reduce_ex__",
    }
)

#: builtins whose mere mention defeats static vetting (dynamic attribute
#: access, code execution, file IO)
BANNED_NAMES: FrozenSet[str] = frozenset(
    {
        "getattr", "setattr", "delattr", "eval", "exec", "compile",
        "open", "input", "vars", "globals", "locals", "__import__",
        "breakpoint", "exit", "quit",
    }
)

#: names the sandbox provides to generated programs (safe builtins plus
#: the ``tables`` input binding)
DEFAULT_KNOWN_NAMES: FrozenSet[str] = frozenset(
    {
        "len", "sum", "min", "max", "sorted", "list", "dict", "set",
        "tuple", "str", "int", "float", "bool", "range", "enumerate",
        "zip", "abs", "round", "True", "False", "None", "tables",
    }
)

#: variables a generated program must leave behind
OUTPUT_CONTRACT = ("result", "columns")


def check_python(
    code: str,
    known_names: Iterable[str] = DEFAULT_KNOWN_NAMES,
    allowed_imports: FrozenSet[str] = IMPORT_ALLOWLIST,
    require_contract: bool = True,
) -> List[Finding]:
    """Analyze ``code`` and return all findings (empty means clean)."""
    try:
        tree = ast.parse(code, mode="exec")
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax",
                message=f"program does not parse: {exc.msg}",
                line=exc.lineno or 0,
            )
        ]
    findings: List[Finding] = []
    findings.extend(_check_imports(tree, allowed_imports))
    findings.extend(_check_attributes(tree))
    findings.extend(_check_banned_names(tree))
    findings.extend(_check_loops(tree))
    findings.extend(_check_unknown_names(tree, frozenset(known_names)))
    if require_contract:
        findings.extend(_check_contract(tree))
    return sorted(findings, key=lambda f: (f.line, f.rule))


def assert_safe(
    code: str,
    known_names: Iterable[str] = DEFAULT_KNOWN_NAMES,
    allowed_imports: FrozenSet[str] = IMPORT_ALLOWLIST,
    require_contract: bool = True,
) -> None:
    """Raise :class:`StaticAnalysisError` unless ``code`` checks clean."""
    findings = check_python(code, known_names, allowed_imports, require_contract)
    if findings:
        raise StaticAnalysisError(
            "generated program rejected by static analysis:\n"
            + render_findings(findings),
            findings=findings,
        )


# -- individual passes -----------------------------------------------------
def _check_imports(
    tree: ast.Module, allowed: FrozenSet[str]
) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root not in allowed:
                    findings.append(
                        Finding(
                            rule="banned-import",
                            message=f"import of {alias.name!r} is not allowed "
                            f"(allowlist: {sorted(allowed)})",
                            line=node.lineno,
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if node.level or root not in allowed:
                findings.append(
                    Finding(
                        rule="banned-import",
                        message=f"import from {node.module or '.'!r} is not "
                        f"allowed (allowlist: {sorted(allowed)})",
                        line=node.lineno,
                    )
                )
    return findings


def _check_attributes(tree: ast.Module) -> List[Finding]:
    return [
        Finding(
            rule="banned-attribute",
            message=f"access to attribute {node.attr!r} can escape the sandbox",
            line=node.lineno,
        )
        for node in ast.walk(tree)
        if isinstance(node, ast.Attribute) and node.attr in BANNED_ATTRIBUTES
    ]


def _check_banned_names(tree: ast.Module) -> List[Finding]:
    return [
        Finding(
            rule="banned-call",
            message=f"use of {node.id!r} is not allowed in generated code",
            line=node.lineno,
        )
        for node in ast.walk(tree)
        if isinstance(node, ast.Name)
        and isinstance(node.ctx, ast.Load)
        and node.id in BANNED_NAMES
    ]


def _check_loops(tree: ast.Module) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.While):
            continue
        test = node.test
        constant_true = isinstance(test, ast.Constant) and bool(test.value)
        if constant_true and not _loop_can_exit(node.body):
            findings.append(
                Finding(
                    rule="unbounded-loop",
                    message="'while True' loop has no break/return/raise",
                    line=node.lineno,
                )
            )
    return findings


def _loop_can_exit(body: Sequence[ast.stmt]) -> bool:
    """True if the loop body contains a statement that leaves the loop.

    Nested loops are not descended into: a ``break`` there terminates
    the inner loop only.
    """
    for stmt in body:
        if isinstance(stmt, (ast.Break, ast.Return, ast.Raise)):
            return True
        if isinstance(stmt, ast.If):
            if _loop_can_exit(stmt.body) or _loop_can_exit(stmt.orelse):
                return True
        elif isinstance(stmt, ast.Try):
            blocks = [stmt.body, stmt.orelse, stmt.finalbody]
            blocks += [handler.body for handler in stmt.handlers]
            if any(_loop_can_exit(block) for block in blocks):
                return True
        elif isinstance(stmt, ast.With):
            if _loop_can_exit(stmt.body):
                return True
    return False


def _bound_names(tree: ast.Module) -> Set[str]:
    """Every name the program binds anywhere (flat, scope-insensitive)."""
    bound: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.arg):
            bound.add(node.arg)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return bound


def _check_unknown_names(
    tree: ast.Module, known: FrozenSet[str]
) -> List[Finding]:
    bound = _bound_names(tree)
    findings = []
    reported: Set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
            continue
        name = node.id
        if name in bound or name in known or name in BANNED_NAMES:
            continue  # banned names already get a banned-call finding
        if name in reported:
            continue
        reported.add(name)
        findings.append(
            Finding(
                rule="unknown-name",
                message=f"name {name!r} is never bound and is not provided "
                "by the sandbox",
                line=node.lineno,
            )
        )
    return findings


def _check_contract(tree: ast.Module) -> List[Finding]:
    assigned = _definitely_assigned(tree.body)
    return [
        Finding(
            rule="output-contract",
            message=f"variable {name!r} is not assigned on every path",
        )
        for name in OUTPUT_CONTRACT
        if name not in assigned
    ]


def _definitely_assigned(stmts: Sequence[ast.stmt]) -> Set[str]:
    """Names assigned on *every* execution path through ``stmts``.

    Conservative: loop bodies may run zero times, so their assignments
    do not count; an ``if`` only counts names assigned in both arms.
    """
    assigned: Set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                assigned |= _target_names(target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                assigned.add(stmt.target.id)
        elif isinstance(stmt, ast.If):
            if stmt.orelse:
                assigned |= _definitely_assigned(stmt.body) & _definitely_assigned(
                    stmt.orelse
                )
        elif isinstance(stmt, ast.With):
            assigned |= _definitely_assigned(stmt.body)
        elif isinstance(stmt, ast.Try):
            assigned |= _definitely_assigned(stmt.finalbody)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                assigned.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            assigned.add(stmt.name)
    return assigned


def _target_names(target: ast.expr) -> Set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names |= _target_names(element)
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()
