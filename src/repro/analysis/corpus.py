"""Golden corpus of generated-program fixtures for the vetting pipeline.

Each :class:`Fixture` is one small program of the kind CodexDB's code
generator (or a model behind it) might emit, labeled with the ground
truth — ``safe=True`` programs must be accepted by
:func:`repro.analysis.pycheck.check_python` (no error-severity
findings), ``safe=False`` programs must be rejected with exactly the
error rules in ``expect_rules``. Fixtures with
``legacy_false_positive=True`` are benign programs the PR-1
mention-ban checker wrongly rejected; the flow-sensitive pipeline must
accept them (that regression is asserted in ``tests/test_dataflow.py``
and measured in ``benchmarks/test_bench_analysis.py``).

The fixtures live as string constants rather than ``.py`` files on
purpose: several deliberately contain ``eval``/``open``/infinite loops,
and the repo-wide lint gate must not see them as first-class source.

:func:`legacy_rejects` is a compact, faithful re-implementation of the
PR-1 flow-*insensitive* rules (mention bans, flat bound-name set,
literal ``while True`` check, ``finally``-only try contract). It exists
so tests and benchmarks can demonstrate the precision/recall gap
between the two pipelines without keeping the old module alive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.analysis.pycheck import (
    BANNED_ATTRIBUTES,
    BANNED_NAMES,
    IMPORT_ALLOWLIST,
    OUTPUT_CONTRACT,
)


@dataclass(frozen=True)
class Fixture:
    """One labeled generated-program sample."""

    name: str
    code: str
    safe: bool
    #: error rules the new pipeline must report (exactly); empty for safe
    expect_rules: Tuple[str, ...] = ()
    #: benign program the PR-1 mention-ban checker wrongly rejected
    legacy_false_positive: bool = False


FIXTURES: Tuple[Fixture, ...] = (
    # -- programs that must be rejected ------------------------------------
    Fixture(
        name="escape-class-chain",
        code=(
            "result = ().__class__.__bases__[0].__subclasses__()\n"
            'columns = ["cls"]\n'
        ),
        safe=False,
        expect_rules=("banned-attribute",),
    ),
    Fixture(
        name="import-os",
        code=(
            "import os\n"
            "result = [os.getcwd()]\n"
            'columns = ["cwd"]\n'
        ),
        safe=False,
        expect_rules=("banned-import",),
    ),
    Fixture(
        name="getattr-alias",
        code=(
            "g = getattr\n"
            'result = [g(tables, "clear")]\n'
            'columns = ["x"]\n'
        ),
        safe=False,
        expect_rules=("banned-call",),
    ),
    Fixture(
        name="taint-to-getattr",
        code=(
            'name = tables["t"][0][0]\n'
            "result = [getattr([], name)]\n"
            'columns = ["x"]\n'
        ),
        safe=False,
        expect_rules=("banned-call", "taint-flow"),
    ),
    Fixture(
        name="taint-to-import",
        code=(
            'mod = __import__(tables["t"][0][0])\n'
            "result = [mod]\n"
            'columns = ["m"]\n'
        ),
        safe=False,
        expect_rules=("banned-call", "taint-flow"),
    ),
    Fixture(
        name="while-true-no-break",
        code=(
            "total = 0\n"
            "while True:\n"
            "    total = total + 1\n"
            "result = [total]\n"
            'columns = ["total"]\n'
        ),
        safe=False,
        # the trailing result/columns assignments sit *after* a loop
        # that never exits, so the contract is also unmet
        expect_rules=("unbounded-loop", "output-contract"),
    ),
    Fixture(
        name="frozen-while-cond",
        code=(
            "n = 5\n"
            "total = 0\n"
            "while n > 0:\n"
            "    total = total + 1\n"
            "result = [total]\n"
            'columns = ["total"]\n'
        ),
        safe=False,
        expect_rules=("unbounded-loop",),
    ),
    Fixture(
        name="itertools-count-loop",
        code=(
            "import itertools\n"
            "total = 0\n"
            "for i in itertools.count():\n"
            "    total = total + i\n"
            "result = [total]\n"
            'columns = ["t"]\n'
        ),
        safe=False,
        expect_rules=("unbounded-loop",),
    ),
    Fixture(
        name="nested-break-only-exits-inner",
        code=(
            "total = 0\n"
            "while True:\n"
            '    for row in tables["t"]:\n'
            "        break\n"
            "    total = total + 1\n"
            "result = [total]\n"
            'columns = ["total"]\n'
        ),
        safe=False,
        # the break only exits the inner for; nothing after the while
        # ever runs, so the contract is also unmet
        expect_rules=("unbounded-loop", "output-contract"),
    ),
    Fixture(
        name="use-before-def",
        code=(
            "if len(tables) > 0:\n"
            "    x = 1\n"
            "result = [x]\n"
            'columns = ["x"]\n'
        ),
        safe=False,
        expect_rules=("use-before-def",),
    ),
    Fixture(
        name="nested-def-name-leak",
        code=(
            "def helper():\n"
            "    inner = [1]\n"
            "    return inner\n"
            "result = inner\n"
            'columns = ["x"]\n'
        ),
        safe=False,
        expect_rules=("unknown-name",),
    ),
    Fixture(
        name="contract-missing-branch",
        code=(
            "if len(tables) > 0:\n"
            '    result = list(tables["t"])\n'
            'columns = ["a"]\n'
        ),
        safe=False,
        expect_rules=("output-contract",),
    ),
    Fixture(
        name="open-call",
        code=(
            'rows = open("/etc/passwd")\n'
            "result = [rows]\n"
            'columns = ["x"]\n'
        ),
        safe=False,
        expect_rules=("banned-call",),
    ),
    Fixture(
        name="exec-payload",
        code=(
            'exec("result = 1")\n'
            "result = [1]\n"
            'columns = ["x"]\n'
        ),
        safe=False,
        expect_rules=("banned-call",),
    ),
    Fixture(
        name="from-subprocess-import",
        code=(
            "from subprocess import run\n"
            'result = [run("true")]\n'
            'columns = ["x"]\n'
        ),
        safe=False,
        expect_rules=("banned-import",),
    ),
    # -- programs that must be accepted ------------------------------------
    Fixture(
        name="dead-branch-eval",
        code=(
            'rows = tables["t"]\n'
            "if False:\n"
            '    result = eval("1")\n'
            "result = [row for row in rows]\n"
            'columns = ["a"]\n'
        ),
        safe=True,
        legacy_false_positive=True,
    ),
    Fixture(
        name="shadowed-open",
        code=(
            "open = 0\n"
            'for row in tables["t"]:\n'
            "    open = open + 1\n"
            "result = [open]\n"
            'columns = ["n"]\n'
        ),
        safe=True,
        legacy_false_positive=True,
    ),
    Fixture(
        name="contract-try-both-arms",
        code=(
            "try:\n"
            '    result = [row for row in tables["t"]]\n'
            "except:\n"
            "    result = []\n"
            'columns = ["a"]\n'
        ),
        safe=True,
        legacy_false_positive=True,
    ),
    Fixture(
        name="dead-while-banned",
        code=(
            "while False:\n"
            '    getattr(tables, "clear")()\n'
            'result = list(tables["t"])\n'
            'columns = ["a"]\n'
        ),
        safe=True,
        legacy_false_positive=True,
    ),
    Fixture(
        name="string-mention-of-banned",
        code=(
            'result = ["eval", "open", "__import__"]\n'
            'columns = ["word"]\n'
        ),
        safe=True,
    ),
    Fixture(
        name="while-with-break",
        code=(
            "i = 0\n"
            "while True:\n"
            "    i = i + 1\n"
            "    if i > 10:\n"
            "        break\n"
            "result = [i]\n"
            'columns = ["i"]\n'
        ),
        safe=True,
    ),
    Fixture(
        name="clean-comprehension",
        code=(
            'rows = tables["t"]\n'
            "result = [row[0] for row in rows if row[1] > 0]\n"
            'columns = ["a"]\n'
        ),
        safe=True,
    ),
    Fixture(
        name="bounded-repeat",
        code=(
            "import itertools\n"
            "total = 0\n"
            "for x in itertools.repeat(2, 3):\n"
            "    total = total + x\n"
            "result = [total]\n"
            'columns = ["total"]\n'
        ),
        safe=True,
    ),
)


def safe_fixtures() -> List[Fixture]:
    return [f for f in FIXTURES if f.safe]


def unsafe_fixtures() -> List[Fixture]:
    return [f for f in FIXTURES if not f.safe]


def legacy_false_positives() -> List[Fixture]:
    return [f for f in FIXTURES if f.legacy_false_positive]


# -- the PR-1 flow-insensitive rules, for comparison ------------------------
def legacy_rejects(code: str) -> bool:
    """Would the PR-1 mention-ban checker have rejected ``code``?

    Re-implements its four rules verbatim-in-spirit: any *mention* of a
    banned name or attribute anywhere (dead code and shadows included),
    any disallowed import, a literal ``while True`` with no
    break/return/raise, and an output contract that only credited
    ``finally`` blocks inside ``try``.
    """
    tree = ast.parse(code, mode="exec")
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in BANNED_NAMES
        ):
            return True
        if isinstance(node, ast.Attribute) and node.attr in BANNED_ATTRIBUTES:
            return True
        if isinstance(node, ast.Import):
            if any(
                alias.name.split(".")[0] not in IMPORT_ALLOWLIST
                for alias in node.names
            ):
                return True
        if isinstance(node, ast.ImportFrom):
            if node.level or (node.module or "").split(".")[0] not in IMPORT_ALLOWLIST:
                return True
        if isinstance(node, ast.While):
            constant_true = isinstance(node.test, ast.Constant) and bool(
                node.test.value
            )
            if constant_true and not _legacy_loop_can_exit(node.body):
                return True
    assigned = _legacy_definitely_assigned(tree.body)
    return any(name not in assigned for name in OUTPUT_CONTRACT)


def _legacy_loop_can_exit(body) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Break, ast.Return, ast.Raise)):
            return True
        if isinstance(stmt, ast.If):
            if _legacy_loop_can_exit(stmt.body) or _legacy_loop_can_exit(stmt.orelse):
                return True
        elif isinstance(stmt, ast.Try):
            blocks = [stmt.body, stmt.orelse, stmt.finalbody]
            blocks += [handler.body for handler in stmt.handlers]
            if any(_legacy_loop_can_exit(block) for block in blocks):
                return True
        elif isinstance(stmt, ast.With):
            if _legacy_loop_can_exit(stmt.body):
                return True
    return False


def _legacy_definitely_assigned(stmts) -> Set[str]:
    assigned: Set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                assigned |= _legacy_target_names(target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                assigned.add(stmt.target.id)
        elif isinstance(stmt, ast.If):
            if stmt.orelse:
                assigned |= _legacy_definitely_assigned(
                    stmt.body
                ) & _legacy_definitely_assigned(stmt.orelse)
        elif isinstance(stmt, ast.With):
            assigned |= _legacy_definitely_assigned(stmt.body)
        elif isinstance(stmt, ast.Try):
            assigned |= _legacy_definitely_assigned(stmt.finalbody)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                assigned.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            assigned.add(stmt.name)
    return assigned


def _legacy_target_names(target) -> Set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names |= _legacy_target_names(element)
        return names
    if isinstance(target, ast.Starred):
        return _legacy_target_names(target.value)
    return set()
