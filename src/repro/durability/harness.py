"""The recovery harness: crash -> reopen -> verify, over random workloads.

The durability contract under a process crash has three clauses:

1. **no lost committed writes** — every transaction whose commit was
   acknowledged before the crash is present after recovery;
2. **no visible uncommitted writes** — a transaction whose commit was
   never *requested* is absent after recovery;
3. **in-flight commits may land either way** — a commit that was in
   flight when the crash hit may surface committed or not, but nothing
   in between.

:func:`run_crash_matrix` checks all three mechanically: it generates a
seeded random DML workload (tables, inserts, updates, deletes, indexes,
explicit transactions, rollbacks, a compaction), first runs it with a
*recording* :class:`CrashInjector` to discover every reachable crash
point, then for each (point, occurrence, seed) combination replays the
workload with a crash armed, reopens the directory, and compares the
recovered tables against a shadow plain :class:`~repro.sql.Database`
that received exactly the acknowledged statements.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.durability.crash import CrashInjector
from repro.durability.database import DurableDatabase, dump_database
from repro.errors import SimulatedCrash, SQLError
from repro.sql.engine import Database
from repro.utils.rng import SeededRNG

#: workload control markers (everything else is a SQL statement)
BEGIN, COMMIT, ROLLBACK, COMPACT = "BEGIN", "COMMIT", "ROLLBACK", "COMPACT"

_GROUPS = ("alpha", "beta", "gamma")


def random_dml_workload(
    seed: int = 0, num_statements: int = 30, num_tables: int = 2
) -> List[str]:
    """A seeded mixed workload of DDL/DML plus transaction markers.

    Always contains at least one committed transaction, one rolled-back
    transaction, and one compaction, so every crash point of the WAL,
    snapshot, and truncation paths is reachable.
    """
    rng = SeededRNG(seed).spawn("dml-workload")
    tables = [f"t{i}" for i in range(num_tables)]
    ops: List[str] = [
        f"CREATE TABLE {name} (id INT, grp TEXT, val FLOAT)"
        for name in tables
    ]
    next_id = 0

    def insert(table: str) -> str:
        nonlocal next_id
        rows = []
        for _ in range(rng.randint(1, 4)):
            rows.append(
                f"({next_id}, '{rng.choice(_GROUPS)}', "
                f"{rng.randint(0, 100)}.5)"
            )
            next_id += 1
        return f"INSERT INTO {table} VALUES {', '.join(rows)}"

    def mutate(table: str) -> str:
        roll = rng.random()
        if roll < 0.55:
            return insert(table)
        if roll < 0.80:
            return (
                f"UPDATE {table} SET val = val + {rng.randint(1, 9)} "
                f"WHERE grp = '{rng.choice(_GROUPS)}'"
            )
        return f"DELETE FROM {table} WHERE id = {rng.randint(0, max(next_id, 1))}"

    # Guaranteed structure: seed rows, a committed txn, a rolled-back
    # txn, and a compaction, with random filler in between.
    for table in tables:
        ops.append(insert(table))
    ops += [BEGIN, mutate(rng.choice(tables)), mutate(rng.choice(tables)), COMMIT]
    ops += [BEGIN, mutate(rng.choice(tables)), ROLLBACK]
    ops.append(COMPACT)
    indexed = False
    while len(ops) < num_statements:
        roll = rng.random()
        if roll < 0.12 and not indexed:
            ops.append(f"CREATE INDEX ON {tables[0]} (grp)")
            indexed = True
        elif roll < 0.30:
            block = [BEGIN, mutate(rng.choice(tables))]
            if rng.coin(0.5):
                block.append(mutate(rng.choice(tables)))
            block.append(COMMIT if rng.coin(0.75) else ROLLBACK)
            ops += block
        else:
            ops.append(mutate(rng.choice(tables)))
    return ops


@dataclass
class TrialResult:
    """One crash-and-recover trial of the matrix."""

    point: str
    occurrence: int
    seed: int
    crashed: bool
    equivalent: bool
    detail: str = ""
    #: workload length, so the exact trial is reconstructible
    num_statements: int = 0
    #: which data plane ran the trial ("single" or "cluster")
    topology: str = "single"
    #: a second armed crash that provoked the failover (cluster mode)
    trigger_point: str = ""
    trigger_occurrence: int = 0

    @property
    def ok(self) -> bool:
        return self.equivalent

    def repro_line(self) -> str:
        """One pasteable line that re-runs exactly this trial."""
        runner = (
            "run_crash_trial"
            if self.topology == "single"
            else "run_cluster_crash_trial"
        )
        workload = (
            f"random_dml_workload(seed={self.seed}, "
            f"num_statements={self.num_statements})"
        )
        extra = ""
        if self.trigger_point:
            extra = (
                f", trigger_point={self.trigger_point!r}, "
                f"trigger_occurrence={self.trigger_occurrence}"
            )
        return (
            f"{runner}(tmp_dir, {workload}, "
            f"point={self.point!r}, occurrence={self.occurrence}, "
            f"seed={self.seed}{extra})"
        )


@dataclass
class CrashMatrixReport:
    """Every trial of one matrix run, plus the discovered crash points."""

    trials: List[TrialResult] = field(default_factory=list)
    #: crash point -> max occurrences observed in a crash-free run
    points: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> int:
        return sum(1 for t in self.trials if t.ok)

    @property
    def failed(self) -> List[TrialResult]:
        return [t for t in self.trials if not t.ok]

    @property
    def all_ok(self) -> bool:
        return not self.failed

    def render(self) -> List[str]:
        lines = [
            f"crash points discovered: {len(self.points)}",
            f"trials: {len(self.trials)}, passed: {self.passed}, "
            f"failed: {len(self.failed)}",
        ]
        for trial in self.failed:
            lines.append(
                f"  FAILED {trial.point}#{trial.occurrence} seed={trial.seed} "
                f"topology={trial.topology}: {trial.detail}"
            )
            lines.append(f"    repro: {trial.repro_line()}")
        return lines


def _run_workload(
    db: DurableDatabase, workload: Sequence[str]
) -> Tuple[Database, Optional[List[str]], bool]:
    """Drive the workload, shadowing acknowledged statements.

    Returns ``(shadow, inflight, crashed)`` where ``shadow`` holds
    exactly the committed statements and ``inflight`` the statements of
    a commit that was requested but not yet acknowledged at crash time.
    """
    shadow = Database()
    txn_ops: List[str] = []
    in_txn = False
    inflight: Optional[List[str]] = None
    try:
        for op in workload:
            if op == BEGIN:
                db.begin()
                in_txn, txn_ops = True, []
            elif op == COMMIT:
                inflight = list(txn_ops)
                db.commit()
                for sql in inflight:
                    shadow.execute(sql)
                inflight, in_txn, txn_ops = None, False, []
            elif op == ROLLBACK:
                db.rollback()
                in_txn, txn_ops = False, []
            elif op == COMPACT:
                db.compact()
            elif in_txn:
                try:
                    db.execute(op)
                except SQLError:
                    in_txn, txn_ops = False, []  # statement aborted the txn
                else:
                    txn_ops.append(op)
            else:
                inflight = [op]
                try:
                    db.execute(op)
                except SQLError:
                    pass  # nothing became durable
                else:
                    shadow.execute(op)
                inflight = None
        return shadow, None, False
    except SimulatedCrash:
        return shadow, inflight, True


def discover_crash_points(
    directory: Union[str, Path], workload: Sequence[str]
) -> Dict[str, int]:
    """Run the workload crash-free and count reaches of every point."""
    directory = Path(directory)
    shutil.rmtree(directory, ignore_errors=True)
    recorder = CrashInjector()
    db = DurableDatabase(directory, crash=recorder)
    _run_workload(db, workload)
    db.close()
    return dict(recorder.seen)


def run_crash_trial(
    directory: Union[str, Path],
    workload: Sequence[str],
    point: str,
    occurrence: int,
    seed: int = 0,
    num_statements: Optional[int] = None,
) -> TrialResult:
    """Crash at one (point, occurrence), reopen, verify the contract.

    ``num_statements`` is the value that was passed to
    :func:`random_dml_workload` (recorded so a failed trial's repro
    line regenerates the identical workload).
    """
    directory = Path(directory)
    shutil.rmtree(directory, ignore_errors=True)
    crash = CrashInjector().at(point, occurrence)
    db = DurableDatabase(directory, crash=crash)
    shadow, inflight, crashed = _run_workload(db, workload)
    db.close()

    recovered = DurableDatabase(directory)
    recovered_state = recovered.state()
    recovered.close()

    n = num_statements if num_statements is not None else len(workload)
    expected = dump_database(shadow)
    if recovered_state == expected:
        return TrialResult(point, occurrence, seed, crashed, True, "", n)
    if inflight is not None:
        # The crash hit mid-commit: the transaction may legitimately
        # have become durable. All-or-nothing is still required.
        for sql in inflight:
            shadow.execute(sql)
        if recovered_state == dump_database(shadow):
            return TrialResult(
                point, occurrence, seed, crashed, True,
                "in-flight commit landed", n,
            )
    return TrialResult(
        point,
        occurrence,
        seed,
        crashed,
        False,
        f"recovered tables {sorted(t['name'] for t in recovered_state['tables'])} "
        "differ from the acknowledged state",
        n,
    )


def run_crash_matrix(
    base_dir: Union[str, Path],
    seeds: Sequence[int] = (0, 1, 2),
    num_statements: int = 30,
    max_occurrences_per_point: int = 2,
    topology: str = "single",
    num_shards: int = 2,
    failover: bool = False,
) -> CrashMatrixReport:
    """Crash every reachable point (first and last occurrence) per seed.

    ``topology="cluster"`` runs the same matrix against the sharded
    data plane (see :mod:`repro.sql.cluster.harness`); ``num_shards``
    and ``failover`` apply only there.
    """
    if topology == "cluster":
        # Deferred import: repro.durability must not import repro.sql.cluster
        # at module load (the cluster package builds on this one).
        from repro.sql.cluster.harness import run_cluster_crash_matrix

        return run_cluster_crash_matrix(
            base_dir,
            seeds=seeds,
            num_statements=num_statements,
            num_shards=num_shards,
            max_occurrences_per_point=max_occurrences_per_point,
            failover=failover,
        )
    base_dir = Path(base_dir)
    report = CrashMatrixReport()
    for seed in seeds:
        workload = random_dml_workload(seed, num_statements=num_statements)
        trial_dir = base_dir / f"seed{seed}"
        seen = discover_crash_points(trial_dir, workload)
        for name, count in seen.items():
            report.points[name] = max(report.points.get(name, 0), count)
        for point in sorted(seen):
            occurrences = sorted({1, seen[point]})[:max_occurrences_per_point]
            for occurrence in occurrences:
                report.trials.append(
                    run_crash_trial(
                        trial_dir, workload, point, occurrence, seed,
                        num_statements=num_statements,
                    )
                )
    return report
