"""Durable NeuralDB: persist the fact log, reindex on reopen.

A :class:`~repro.neuraldb.NeuralDatabase` keeps its facts in memory and
its index inside a retriever object; neither survives the process. This
wrapper writes every ``add_fact``/``remove_fact`` through the same
framed, CRC-checked log the SQL engine uses (one fsync per acknowledged
mutation), and on :meth:`open` replays the log into a fact list and
hands it to a caller-supplied retriever factory — so a reopened store
reindexes to *exactly* the state of the last acknowledged mutation and
answers ``lookup``/``count`` queries identically.

The retriever factory keeps the policy with the caller: a
``LexicalRetriever`` rebuilds instantly, an ``EmbeddingRetriever``
re-pretrains deterministically from its seed. Only the *facts* are
state; everything else is a pure function of them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.durability.crash import CrashInjector
from repro.durability.wal import WriteAheadLog, read_wal
from repro.errors import DurabilityError, NeuralDBError, WALCorruptionError
from repro.neuraldb.reader import NeuralReader
from repro.neuraldb.store import NeuralDatabase, QueryOutcome
from repro.reliability.clock import Clock

#: builds a retriever (Lexical/Embedding/...) from a recovered fact list
RetrieverFactory = Callable[[List[str]], object]


class DurableNeuralDatabase:
    """A :class:`NeuralDatabase` whose fact store survives crashes."""

    LOG_NAME = "facts.log"

    def __init__(
        self,
        directory: Union[str, Path],
        retriever_factory: RetrieverFactory,
        reader: NeuralReader,
        initial_facts: Optional[Sequence[str]] = None,
        crash: Optional[CrashInjector] = None,
        clock: Optional[Clock] = None,
        fsync_latency: float = 0.0,
        durable: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log_path = self.directory / self.LOG_NAME
        scan = read_wal(self.log_path)
        if scan.error is not None:
            raise WALCorruptionError(
                f"fact log {self.log_path} is corrupt: {scan.error}"
            )
        facts = _replay_facts(scan.records, self.log_path)
        self.log = WriteAheadLog(
            self.log_path,
            crash=crash,
            clock=clock,
            fsync_latency=fsync_latency,
            durable=durable,
            next_lsn=scan.last_lsn + 1,
        )
        if scan.torn_bytes:
            self.log.truncate_to(scan.valid_bytes)
        #: torn-tail bytes dropped while opening (0 for a clean log)
        self.repaired_bytes = scan.torn_bytes
        if not facts:
            if not initial_facts:
                raise NeuralDBError(
                    f"fact log {self.log_path} is empty; pass initial_facts "
                    "to seed the store"
                )
            for fact in initial_facts:
                _check_fact(fact)
                self.log.append({"t": "add", "fact": fact}, sync=False)
                facts.append(fact)
            self.log.sync()
        self.db = NeuralDatabase(retriever_factory(facts), reader)

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        retriever_factory: RetrieverFactory,
        reader: NeuralReader,
        **kwargs,
    ) -> "DurableNeuralDatabase":
        """Open (creating or recovering) a durable fact store."""
        return cls(directory, retriever_factory, reader, **kwargs)

    # -- durable mutations -------------------------------------------------
    def add_fact(self, fact: str) -> None:
        """Insert one fact: logged and fsynced before it is indexed."""
        _check_fact(fact)
        self.log.append({"t": "add", "fact": fact}, sync=True)
        self.db.add_fact(fact)

    def remove_fact(self, fact: str) -> None:
        """Delete one fact (exact match), durably."""
        if fact not in self.db.retriever.facts:
            raise NeuralDBError(f"fact not stored: {fact!r}")
        if len(self.db.retriever.facts) == 1:
            raise NeuralDBError("cannot remove the last fact of the store")
        self.log.append({"t": "remove", "fact": fact}, sync=True)
        self.db.remove_fact(fact)

    # -- query passthrough -------------------------------------------------
    @property
    def facts(self) -> List[str]:
        return self.db.facts

    def lookup(self, question: str, top_k: int = 2) -> QueryOutcome:
        return self.db.lookup(question, top_k=top_k)

    def count(
        self, entity: str, question_of_fact: str, expected: str
    ) -> QueryOutcome:
        return self.db.count(entity, question_of_fact, expected)

    def count_department(self, dept: str) -> QueryOutcome:
        return self.db.count_department(dept)

    def join_lookup(self, person: str) -> QueryOutcome:
        return self.db.join_lookup(person)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self.log.close()

    def __enter__(self) -> "DurableNeuralDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _check_fact(fact: str) -> None:
    if not fact or not fact.strip():
        raise NeuralDBError("cannot store an empty fact")


def _replay_facts(records, path: Path) -> List[str]:
    facts: List[str] = []
    for record in records:
        kind = record.get("t")
        if kind == "add":
            facts.append(record["fact"])
        elif kind == "remove":
            try:
                facts.remove(record["fact"])
            except ValueError:
                raise DurabilityError(
                    f"fact log {path} removes a fact that was never "
                    f"added: {record['fact']!r} (lsn {record.get('lsn')})"
                ) from None
        else:
            raise WALCorruptionError(
                f"unknown fact-log record type {kind!r} in {path} "
                f"(lsn {record.get('lsn')})"
            )
    return facts
