"""An append-only write-ahead log with per-record CRC32 framing.

One record per line::

    <length:08d> <crc32:08x> <payload-json>\\n

``length`` is the byte length of the JSON payload and ``crc32`` its
checksum, so the reader can tell exactly where a crash cut the log.
Every payload carries a monotonically increasing ``lsn`` assigned at
append time; LSNs survive snapshot truncation, which is how replay
skips records already folded into a snapshot.

Tail classification on read:

* the file ends before a record's header, payload, or newline is
  complete → a **torn tail**: the record was never fully written, the
  operation it logged was never acknowledged, and the tail is safe to
  drop (callers truncate the file back to the last whole record);
* a record region is fully present but its CRC, framing, or JSON does
  not check out → **corruption**: bytes of an acknowledged record were
  altered after the fact, reported as
  :class:`~repro.errors.WALCorruptionError` rather than repaired.

Appends go through an unbuffered handle so the on-disk state always
matches what the code has written — a simulated process crash
(:class:`~repro.durability.crash.CrashInjector`) never has hidden
user-space buffers to lose.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.durability.crash import CrashInjector, reach
from repro.durability.io import fsync_handle
from repro.errors import DurabilityError, WALCorruptionError
from repro.reliability.clock import Clock

#: bytes of ``<length:08d> <crc32:08x> `` before each payload
HEADER_LEN = 18


def encode_record(payload: Dict) -> bytes:
    """Frame one record: length prefix, CRC32, compact JSON, newline."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(body) > 99_999_999:
        raise DurabilityError("WAL record exceeds the 8-digit length prefix")
    return b"%08d %08x " % (len(body), zlib.crc32(body)) + body + b"\n"


@dataclass
class WALReadResult:
    """Everything a scan of the log learned."""

    records: List[Dict] = field(default_factory=list)
    #: bytes of the valid prefix (offset the file may be truncated to)
    valid_bytes: int = 0
    #: bytes dropped as a torn tail (0 when the log ended cleanly)
    torn_bytes: int = 0
    #: non-None when fully written bytes were found corrupted
    error: Optional[str] = None

    @property
    def last_lsn(self) -> int:
        return max((r.get("lsn", 0) for r in self.records), default=0)


def scan_wal_bytes(data: bytes) -> WALReadResult:
    """Parse framed records from raw bytes, classifying any bad tail."""
    result = WALReadResult()
    offset, total = 0, len(data)
    while offset < total:
        remaining = total - offset
        if remaining < HEADER_LEN:
            result.torn_bytes = remaining
            break
        header = data[offset : offset + HEADER_LEN]
        try:
            if header[8:9] != b" " or header[17:18] != b" ":
                raise ValueError("bad separators")
            length = int(header[:8])
            crc = int(header[9:17], 16)
        except ValueError:
            result.error = (
                f"unparsable record header at byte {offset}: {header!r}"
            )
            break
        end = offset + HEADER_LEN + length + 1
        if end > total:
            # The payload (or its newline) never made it to disk.
            result.torn_bytes = remaining
            break
        body = data[offset + HEADER_LEN : end - 1]
        if data[end - 1 : end] != b"\n":
            result.error = f"missing record terminator at byte {end - 1}"
            break
        if zlib.crc32(body) != crc:
            result.error = (
                f"CRC mismatch for record at byte {offset} "
                f"(stored {crc:08x}, computed {zlib.crc32(body):08x})"
            )
            break
        try:
            payload = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            result.error = (
                f"record at byte {offset} passed CRC but is not JSON: {exc}"
            )
            break
        result.records.append(payload)
        offset = end
    result.valid_bytes = offset
    return result


def read_wal(path: Union[str, Path]) -> WALReadResult:
    """Scan a log file; a missing file reads as an empty log."""
    path = Path(path)
    if not path.exists():
        return WALReadResult()
    return scan_wal_bytes(path.read_bytes())


class WriteAheadLog:
    """Appender over one log file, with crash points and fsync control.

    ``sync=False`` appends hand bytes to the OS without fsyncing — the
    caller groups them under one explicit :meth:`sync` (the commit
    point), which is the only durability barrier a transaction pays.
    """

    def __init__(
        self,
        path: Union[str, Path],
        crash: Optional[CrashInjector] = None,
        clock: Optional[Clock] = None,
        fsync_latency: float = 0.0,
        durable: bool = True,
        next_lsn: int = 1,
    ) -> None:
        self.path = Path(path)
        self.crash = crash
        self.clock = clock
        self.fsync_latency = fsync_latency
        self.durable = durable
        self.last_lsn = next_lsn - 1
        #: appended / fsynced operation counts (for overhead reporting)
        self.appends = 0
        self.syncs = 0
        self._handle = open(self.path, "ab", buffering=0)

    def append(self, record: Dict, sync: bool = True) -> int:
        """Frame and append one record; returns its assigned LSN."""
        self._check_open()
        lsn = self.last_lsn + 1
        line = encode_record({"lsn": lsn, **record})
        reach(self.crash, "wal-before-append")
        half = len(line) // 2
        self._handle.write(line[:half])
        # A crash here leaves half a record — the torn tail recovery
        # must classify as "never acknowledged" and drop.
        reach(self.crash, "wal-torn-append")
        self._handle.write(line[half:])
        reach(self.crash, "wal-after-append")
        self.last_lsn = lsn
        self.appends += 1
        if sync:
            self.sync()
        return lsn

    def append_raw(self, framed: bytes, last_lsn: int, sync: bool = True) -> None:
        """Append already-framed bytes (log shipping's receive path).

        The replica side of replication persists shipped frames exactly
        as the primary encoded them, so both logs stay byte-identical
        and re-scanning either classifies tails the same way. The
        caller passes the highest LSN contained in ``framed`` (it has
        already parsed the frames to validate them).
        """
        self._check_open()
        reach(self.crash, "wal-before-append")
        half = len(framed) // 2
        self._handle.write(framed[:half])
        reach(self.crash, "wal-torn-append")
        self._handle.write(framed[half:])
        reach(self.crash, "wal-after-append")
        self.last_lsn = max(self.last_lsn, int(last_lsn))
        self.appends += 1
        if sync:
            self.sync()

    def sync(self) -> None:
        """The durability barrier: fsync everything appended so far."""
        self._check_open()
        reach(self.crash, "wal-before-fsync")
        if self.durable:
            fsync_handle(
                self._handle, clock=self.clock, fsync_latency=self.fsync_latency
            )
        self.syncs += 1
        reach(self.crash, "wal-after-fsync")

    def size(self) -> int:
        """Current log length in bytes."""
        return self.path.stat().st_size if self.path.exists() else 0

    def truncate_to(self, n_bytes: int) -> None:
        """Cut the log back to ``n_bytes`` (torn-tail repair)."""
        self._check_open()
        self._handle.close()
        os.truncate(self.path, n_bytes)
        self._handle = open(self.path, "ab", buffering=0)

    def reset(self) -> None:
        """Empty the log (after its contents were snapshotted); LSNs go on."""
        self.truncate_to(0)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _check_open(self) -> None:
        if self._handle is None:
            raise DurabilityError(f"write-ahead log {self.path} is closed")

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
