"""``DurableDatabase``: a crash-safe wrapper around the SQL engine.

The in-memory :class:`~repro.sql.Database` executes; this wrapper makes
its state survive process crashes with the classic recipe:

* every DDL/DML statement is appended to a write-ahead log *before* it
  is applied, tagged with a transaction id;
* a transaction becomes durable exactly when its ``commit`` record is
  fsynced — autocommitted statements pay one fsync, an explicit
  ``begin()``/``commit()`` block pays one fsync for the whole group;
* :meth:`open` replays the log over the latest snapshot, applying only
  committed transactions, repairing torn tails, and refusing real
  corruption with a typed error;
* :meth:`compact` folds the current state into an atomically written,
  SHA-256-checksummed snapshot and empties the log; record LSNs make
  replay idempotent if the process dies between the two steps.

Semantics under failure follow PostgreSQL's lead: a statement that
errors inside an explicit transaction aborts the whole transaction
(the in-memory state is rebuilt from the durable one), so memory never
drifts from what a crash-reopen would reconstruct.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.durability.crash import CrashInjector, reach
from repro.durability.io import atomic_write_bytes
from repro.durability.wal import WriteAheadLog, read_wal
from repro.errors import (
    DurabilityError,
    SnapshotCorruptionError,
    SQLError,
    WALCorruptionError,
)
from repro.reliability.clock import Clock
from repro.sql.ast import (
    CreateIndex,
    CreateTable,
    DeleteFrom,
    DropTable,
    InsertInto,
    UpdateTable,
)
from repro.sql.engine import Database, QueryResult
from repro.sql.parser import parse_sql
from repro.sql.schema import TableSchema
from repro.sql.table import Table
from repro.sql.types import SQLType

#: statement kinds that mutate state and therefore must be logged
MUTATING_STATEMENTS = (
    CreateTable,
    InsertInto,
    UpdateTable,
    DeleteFrom,
    DropTable,
    CreateIndex,
)

SNAPSHOT_FORMAT = 1


def write_snapshot(
    path: Union[str, Path],
    body_dict: Dict,
    last_lsn: int,
    crash: Optional[CrashInjector] = None,
    label: str = "snapshot",
    durable: bool = True,
    clock: Optional[Clock] = None,
    fsync_latency: float = 0.0,
) -> int:
    """Atomically write a checksummed snapshot file; returns body bytes.

    The on-disk format is one JSON header line (format version, the
    last LSN the snapshot covers, SHA-256 of the body) followed by the
    compact-JSON body. Shared by :meth:`DurableDatabase.compact` and
    the cluster's replica reseed path, so every snapshot in the tree
    is readable by :meth:`DurableDatabase.open`.
    """
    body = json.dumps(
        body_dict, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    header = json.dumps(
        {
            "format": SNAPSHOT_FORMAT,
            "last_lsn": int(last_lsn),
            "sha256": hashlib.sha256(body).hexdigest(),
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    atomic_write_bytes(
        path,
        header + b"\n" + body,
        crash=crash,
        label=label,
        durable=durable,
        clock=clock,
        fsync_latency=fsync_latency,
    )
    return len(body)


def read_snapshot(path: Union[str, Path]):
    """Read and integrity-check a snapshot file.

    Returns ``(body_dict, last_lsn)``, or ``(None, 0)`` when the file
    does not exist. Raises :class:`SnapshotCorruptionError` on any
    header, checksum, or decoding failure.
    """
    path = Path(path)
    if not path.exists():
        return None, 0
    raw = path.read_bytes()
    try:
        header_line, body = raw.split(b"\n", 1)
        header = json.loads(header_line.decode("utf-8"))
        stored = header["sha256"]
        last_lsn = int(header["last_lsn"])
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise SnapshotCorruptionError(
            f"snapshot {path} has a bad header: {exc}"
        ) from exc
    digest = hashlib.sha256(body).hexdigest()
    if digest != stored:
        raise SnapshotCorruptionError(
            f"snapshot {path} failed its checksum "
            f"(stored {stored[:12]}..., computed {digest[:12]}...)"
        )
    try:
        data = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotCorruptionError(
            f"snapshot {path} body does not restore: {exc}"
        ) from exc
    return data, last_lsn


# -- state serialization ---------------------------------------------------
def dump_table(table: Table) -> Dict:
    """One table as a JSON-safe dict (schema, rows, index columns)."""
    return {
        "name": table.schema.name,
        "columns": [[c.name, c.sql_type.value] for c in table.schema.columns],
        "rows": [list(row) for row in table.rows],
        "indexes": table.index_names(),
    }


def restore_table(data: Dict) -> Table:
    """Rebuild a table from :func:`dump_table` output."""
    schema = TableSchema.build(
        data["name"],
        [(name, SQLType(type_name)) for name, type_name in data["columns"]],
    )
    table = Table(schema, rows=data["rows"])
    for column in data.get("indexes", ()):
        table.create_index(column)
    return table


def dump_database(db: Database) -> Dict:
    """The full catalog as a JSON-safe dict (the snapshot body)."""
    return {
        "tables": [dump_table(db.table(name)) for name in db.table_names()]
    }


def restore_database(data: Dict, db: Database) -> Database:
    """Load :func:`dump_database` output into a database."""
    for table_data in data["tables"]:
        db.add_table(restore_table(table_data))
    return db


@dataclass
class RecoveryStats:
    """What one :meth:`DurableDatabase.open` had to do."""

    snapshot_loaded: bool = False
    snapshot_lsn: int = 0
    wal_records: int = 0
    replayed_transactions: int = 0
    replayed_statements: int = 0
    #: torn-tail bytes dropped during repair (0 for a clean log)
    repaired_bytes: int = 0


class DurableDatabase:
    """A :class:`~repro.sql.Database` whose state survives crashes.

    Example::

        db = DurableDatabase.open(directory)
        db.execute("CREATE TABLE t (id INT)")    # autocommitted
        db.begin()
        db.execute("INSERT INTO t VALUES (1)")
        db.commit()                              # one fsync for the txn
        db = DurableDatabase.open(directory)     # replays to same state
    """

    SNAPSHOT_NAME = "snapshot.json"
    WAL_NAME = "wal.log"

    def __init__(
        self,
        directory: Union[str, Path],
        crash: Optional[CrashInjector] = None,
        clock: Optional[Clock] = None,
        fsync_latency: float = 0.0,
        durable: bool = True,
        options=None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.crash = crash
        self.clock = clock
        self.fsync_latency = fsync_latency
        self.durable = durable
        self.options = options
        self._txn: Optional[int] = None
        self._txn_tags: List[str] = []
        self._next_txn = 1
        self._closed = False
        self.last_recovery = RecoveryStats()
        #: tags of statements whose commit is durable (exactly-once
        #: re-apply: a tagged statement is skipped if its tag is here)
        self.applied_tags: set = set()
        self.db = self._recover()

    @classmethod
    def open(cls, directory: Union[str, Path], **kwargs) -> "DurableDatabase":
        """Open (creating or recovering) a durable database directory."""
        return cls(directory, **kwargs)

    # -- recovery ----------------------------------------------------------
    @property
    def snapshot_path(self) -> Path:
        return self.directory / self.SNAPSHOT_NAME

    @property
    def wal_path(self) -> Path:
        return self.directory / self.WAL_NAME

    def _recover(self) -> Database:
        stats = RecoveryStats()
        db, snapshot_lsn = self._load_snapshot(stats, self.applied_tags)
        scan = read_wal(self.wal_path)
        if scan.error is not None:
            raise WALCorruptionError(
                f"write-ahead log {self.wal_path} is corrupt: {scan.error}"
            )
        stats.wal_records = len(scan.records)
        stats.repaired_bytes = scan.torn_bytes
        max_txn = self._replay(
            db, scan.records, snapshot_lsn, stats, self.applied_tags
        )
        self._next_txn = max_txn + 1
        self.wal = WriteAheadLog(
            self.wal_path,
            crash=self.crash,
            clock=self.clock,
            fsync_latency=self.fsync_latency,
            durable=self.durable,
            next_lsn=max(snapshot_lsn, scan.last_lsn) + 1,
        )
        if scan.torn_bytes:
            self.wal.truncate_to(scan.valid_bytes)
        # A crash can strand a half-written snapshot temp file; the
        # rename-last protocol means it is garbage — drop it.
        tmp = self.snapshot_path.with_name(self.snapshot_path.name + ".tmp")
        if tmp.exists():
            tmp.unlink()
        self.last_recovery = stats
        return db

    def _load_snapshot(self, stats: RecoveryStats, tags: Optional[set] = None):
        db = Database(self.options)
        data, last_lsn = read_snapshot(self.snapshot_path)
        if data is None:
            return db, 0
        try:
            restore_database(data, db)
        except (ValueError, KeyError, TypeError, SQLError) as exc:
            raise SnapshotCorruptionError(
                f"snapshot {self.snapshot_path} body does not restore: {exc}"
            ) from exc
        if tags is not None:
            tags.update(data.get("tags", ()))
        stats.snapshot_loaded = True
        stats.snapshot_lsn = last_lsn
        return db, last_lsn

    def _replay(
        self,
        db: Database,
        records: List[Dict],
        snapshot_lsn: int,
        stats: RecoveryStats,
        tags: Optional[set] = None,
    ) -> int:
        """Apply committed transactions; return the highest txn id seen."""
        pending: Dict[int, List[Dict]] = {}
        max_txn = 0
        for record in records:
            txn = int(record.get("txn", 0))
            max_txn = max(max_txn, txn)
            if record.get("lsn", 0) <= snapshot_lsn:
                continue  # already folded into the snapshot
            kind = record.get("t")
            if kind == "begin":
                pending.setdefault(txn, [])
            elif kind in ("stmt", "table"):
                pending.setdefault(txn, []).append(record)
            elif kind == "abort":
                pending.pop(txn, None)
            elif kind == "commit":
                for statement in pending.pop(txn, []):
                    self._apply_record(db, statement)
                    if tags is not None and statement.get("tag"):
                        tags.add(statement["tag"])
                    stats.replayed_statements += 1
                stats.replayed_transactions += 1
            else:
                raise WALCorruptionError(
                    f"unknown WAL record type {kind!r} (lsn {record.get('lsn')})"
                )
        # Uncommitted leftovers in `pending` are transactions the crash
        # cut off before commit: invisible by design.
        return max_txn

    @staticmethod
    def _apply_record(db: Database, record: Dict) -> None:
        try:
            if record["t"] == "stmt":
                db.execute(record["sql"])
            else:
                db.add_table(
                    restore_table(record["data"]),
                    replace=record.get("replace", False),
                )
        except SQLError as exc:
            raise DurabilityError(
                f"replay of committed WAL record lsn {record.get('lsn')} "
                f"failed: {exc}"
            ) from exc

    # -- logged mutations --------------------------------------------------
    def execute(self, sql: str, tag: Optional[str] = None) -> QueryResult:
        """Run one SQL statement; mutations are WAL-logged before apply.

        ``tag`` marks the statement for exactly-once re-application: once
        its commit is durable, :meth:`has_applied` returns True for the
        tag (surviving restarts and compaction), so a coordinator that
        lost the acknowledgement can safely retry without double-applying.
        """
        self._check_open()
        statement = parse_sql(sql)
        if not isinstance(statement, MUTATING_STATEMENTS):
            return self.db.execute(sql)
        record = {"t": "stmt", "sql": sql}
        if tag is not None:
            record["tag"] = tag
        return self._logged(record, lambda: self.db.execute(sql), tag)

    def has_applied(self, tag: str) -> bool:
        """True if a statement carrying ``tag`` is durably committed."""
        return tag in self.applied_tags

    def put_table(
        self, table: Table, replace: bool = False, tag: Optional[str] = None
    ) -> None:
        """Durably register an externally built table (logged whole)."""
        self._check_open()
        record = {"t": "table", "data": dump_table(table), "replace": replace}
        if tag is not None:
            record["tag"] = tag
        self._logged(
            record, lambda: self.db.add_table(table, replace=replace), tag
        )

    def load_csv(self, name: str, path: Union[str, Path]) -> Table:
        """Load a CSV as a durable table (the rows go through the WAL)."""
        table = Table.from_csv(name, path)
        self.put_table(table)
        return table

    def _logged(self, record: Dict, apply, tag: Optional[str] = None):
        if self._txn is not None:
            record["txn"] = self._txn
            self.wal.append(record, sync=False)
            try:
                result = apply()
            except SQLError:
                # PostgreSQL-style: an error aborts the enclosing
                # transaction, so memory matches the durable state.
                self._abort(self._txn)
                raise
            if tag is not None:
                self._txn_tags.append(tag)
            return result
        txn = self._next_txn
        self._next_txn += 1
        record["txn"] = txn
        self.wal.append(record, sync=False)
        try:
            result = apply()
        except SQLError:
            # No commit record: the statement is invisible to replay.
            # Rebuild to shed any partial in-memory effects.
            self.db = self._reload_committed()
            raise
        self.wal.append({"t": "commit", "txn": txn}, sync=True)
        if tag is not None:
            self.applied_tags.add(tag)
        return result

    # -- transactions ------------------------------------------------------
    def begin(self) -> int:
        """Start an explicit transaction; returns its id."""
        self._check_open()
        if self._txn is not None:
            raise DurabilityError(
                f"transaction {self._txn} is already active (no nesting)"
            )
        self._txn = self._next_txn
        self._next_txn += 1
        self._txn_tags = []
        self.wal.append({"t": "begin", "txn": self._txn}, sync=False)
        return self._txn

    def commit(self) -> None:
        """Make the active transaction durable (the one fsync it pays)."""
        self._check_open()
        if self._txn is None:
            raise DurabilityError("no active transaction to commit")
        txn, self._txn = self._txn, None
        self.wal.append({"t": "commit", "txn": txn}, sync=True)
        self.applied_tags.update(self._txn_tags)
        self._txn_tags = []

    def rollback(self) -> None:
        """Discard the active transaction, in memory and in the log."""
        self._check_open()
        if self._txn is None:
            raise DurabilityError("no active transaction to roll back")
        self._abort(self._txn)

    def _abort(self, txn: int) -> None:
        self._txn = None
        self._txn_tags = []
        self.wal.append({"t": "abort", "txn": txn}, sync=False)
        self.db = self._reload_committed()

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def _reload_committed(self) -> Database:
        """Rebuild the in-memory engine from the durable state only."""
        stats = RecoveryStats()
        tags: set = set()
        db, snapshot_lsn = self._load_snapshot(stats, tags)
        scan = read_wal(self.wal_path)
        if scan.error is not None:
            raise WALCorruptionError(
                f"write-ahead log {self.wal_path} is corrupt: {scan.error}"
            )
        self._replay(db, scan.records, snapshot_lsn, stats, tags)
        self.applied_tags = tags
        return db

    # -- compaction --------------------------------------------------------
    def compact(self) -> int:
        """Snapshot the current state atomically, then empty the WAL.

        Returns the number of bytes the snapshot body occupies. Safe
        against a crash between the two steps: the snapshot records the
        last LSN it covers, and replay skips records at or below it.
        """
        self._check_open()
        if self._txn is not None:
            raise DurabilityError("cannot compact inside a transaction")
        body_dict = dump_database(self.db)
        if self.applied_tags:
            body_dict["tags"] = sorted(self.applied_tags)
        size = write_snapshot(
            self.snapshot_path,
            body_dict,
            self.wal.last_lsn,
            crash=self.crash,
            label="snapshot",
            durable=self.durable,
            clock=self.clock,
            fsync_latency=self.fsync_latency,
        )
        reach(self.crash, "before-wal-truncate")
        self.wal.reset()
        return size

    # -- passthrough reads -------------------------------------------------
    def table(self, name: str) -> Table:
        return self.db.table(name)

    def table_names(self) -> List[str]:
        return self.db.table_names()

    def state(self) -> Dict:
        """The current catalog as a comparable JSON-safe dict."""
        return dump_database(self.db)

    def explain_stats(self):
        return self.db.explain_stats()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._closed = True
        self.wal.close()

    def _check_open(self) -> None:
        if self._closed:
            raise DurabilityError(f"database {self.directory} is closed")

    def __enter__(self) -> "DurableDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
