"""Crash-safe filesystem primitives: atomic write-temp-fsync-rename.

Every durable artifact in this repository (WAL snapshots, model
checkpoints, tokenizer files, CSV exports) goes through
:func:`atomic_write_bytes`: the payload is written to a sibling
temporary file, flushed and fsynced, then atomically renamed over the
destination, and the parent directory is fsynced so the rename itself
is durable. A crash at *any* point leaves the destination either
untouched or fully written — never half a file. (A stale ``*.tmp``
sibling may survive a crash; it is overwritten by the next write and
ignored by every reader.)

All helpers accept an optional :class:`~repro.durability.crash.CrashInjector`
and announce named crash points around each syscall that matters. For a
write labelled ``L`` the points are, in order::

    L-before-write      nothing on disk yet
    L-torn-write        the temp file holds only half the payload
    L-before-fsync      temp complete but possibly unflushed
    mid-L-rename        temp durable, destination still the old version
    L-after-rename      destination replaced, rename not yet fsynced

The repo linter's ``atomic-write`` rule forbids plain write-mode
``open()`` calls outside this package, so these helpers are the single
place file writes can tear.

fsync timing is chargeable to a :class:`~repro.reliability.clock.Clock`
(``fsync_latency`` simulated seconds per sync), so benchmarks can model
real fsync cost on a virtual clock without wall-clock waits.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.durability.crash import CrashInjector, reach
from repro.reliability.clock import Clock


def fsync_handle(
    handle,
    clock: Optional[Clock] = None,
    fsync_latency: float = 0.0,
) -> None:
    """Flush and fsync one open file handle, charging simulated latency."""
    handle.flush()
    os.fsync(handle.fileno())
    if clock is not None and fsync_latency:
        clock.sleep(fsync_latency)


def fsync_directory(path: Union[str, Path]) -> None:
    """fsync a directory so renames/creations inside it are durable."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    crash: Optional[CrashInjector] = None,
    label: str = "file",
    durable: bool = True,
    clock: Optional[Clock] = None,
    fsync_latency: float = 0.0,
) -> Path:
    """Atomically replace ``path`` with ``data`` (temp + fsync + rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    reach(crash, f"{label}-before-write")
    with open(tmp, "wb") as handle:
        # Write in two halves with a crash point between them: a crash
        # there leaves a visibly torn temp file, which the rename-last
        # protocol must (and does) keep away from the destination.
        half = len(data) // 2
        handle.write(data[:half])
        handle.flush()
        reach(crash, f"{label}-torn-write")
        handle.write(data[half:])
        reach(crash, f"{label}-before-fsync")
        if durable:
            fsync_handle(handle, clock=clock, fsync_latency=fsync_latency)
    reach(crash, f"mid-{label}-rename")
    os.replace(tmp, path)
    reach(crash, f"{label}-after-rename")
    if durable:
        fsync_directory(path.parent)
    return path


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    crash: Optional[CrashInjector] = None,
    label: str = "file",
    durable: bool = True,
    clock: Optional[Clock] = None,
    fsync_latency: float = 0.0,
) -> Path:
    """Atomically replace ``path`` with UTF-8 encoded ``text``."""
    return atomic_write_bytes(
        path,
        text.encode("utf-8"),
        crash=crash,
        label=label,
        durable=durable,
        clock=clock,
        fsync_latency=fsync_latency,
    )
