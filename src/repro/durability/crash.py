"""Deterministic process-crash injection for the storage path.

The storage-side sibling of :class:`repro.reliability.FaultInjector`:
where that injector makes the *network* fail, this one kills the
*process* at named points inside the durability I/O layer
(``wal-torn-append``, ``mid-snapshot-rename``, ...) by raising
:class:`~repro.errors.SimulatedCrash`.

Two modes, composable:

* **armed points** — :meth:`CrashInjector.at` schedules a crash at the
  Nth time a specific point is reached, which is what the crash-matrix
  harness uses to enumerate every reachable crash site;
* **seeded random crashes** — a ``crash_rate`` drawn from one
  :class:`~repro.utils.rng.SeededRNG`, for fuzz-style workloads that
  crash *somewhere* reproducibly.

An injector with nothing armed and rate 0 is a pure recorder: it counts
every point it passes through (:attr:`seen`), so a harness can first run
a workload crash-free to discover which points are reachable and how
often.

The simulated failure model is a *process* crash: bytes already handed
to the OS survive (we do not simulate power loss), and the torn-write
points model the partially flushed states a real kill can leave behind.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DurabilityError, SimulatedCrash
from repro.utils.rng import SeededRNG


class CrashInjector:
    """Decide, at every named crash point, whether the process dies now."""

    def __init__(self, seed: int = 0, crash_rate: float = 0.0) -> None:
        if not 0.0 <= crash_rate < 1.0:
            raise DurabilityError(
                f"crash_rate must be in [0, 1), got {crash_rate}"
            )
        self.crash_rate = crash_rate
        self._rng = SeededRNG(seed).spawn("crashes")
        #: point name -> occurrence (1-based) at which to crash
        self._armed: Dict[str, int] = {}
        #: how many times each point has been reached
        self.seen: Dict[str, int] = {}
        #: total injected crashes
        self.crashes = 0

    def at(self, point: str, occurrence: int = 1) -> "CrashInjector":
        """Arm a crash at the ``occurrence``-th time ``point`` is reached."""
        if occurrence < 1:
            raise DurabilityError(
                f"occurrence is 1-based, got {occurrence}"
            )
        self._armed[point] = occurrence
        return self

    def disarm(self, point: Optional[str] = None) -> None:
        """Disarm one point (or all of them) without resetting counters."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def reach(self, point: str) -> None:
        """Record passing through ``point``; raise if a crash is due."""
        count = self.seen.get(point, 0) + 1
        self.seen[point] = count
        if self._armed.get(point) == count or (
            self.crash_rate and self._rng.coin(self.crash_rate)
        ):
            self.crashes += 1
            raise SimulatedCrash(point, count)

    def reached(self, point: str) -> int:
        """How many times ``point`` has been passed through."""
        return self.seen.get(point, 0)


def reach(crash: Optional[CrashInjector], point: str) -> None:
    """Hit a crash point if an injector is present (no-op otherwise)."""
    if crash is not None:
        crash.reach(point)
