"""Durable storage: write-ahead logging, crash injection, recovery.

The tutorial's stateful stores (the SQL engine under CodexDB and
text-to-SQL, NeuralDB's fact store, model checkpoints) live in memory
or behind torn-write-prone file writes. This package makes the storage
path survive process crashes the way :mod:`repro.reliability` made the
request path survive network faults — deterministically injected,
automatically recovered, and verifiable:

* :mod:`~repro.durability.crash` — seeded :class:`CrashInjector` with
  named crash points raising :class:`~repro.errors.SimulatedCrash`;
* :mod:`~repro.durability.io` — atomic temp-file + fsync + rename
  writes (the only place in the tree allowed to open files for write);
* :mod:`~repro.durability.wal` — :class:`WriteAheadLog`: length-prefixed,
  CRC32-checked JSON records, torn-tail classification and repair;
* :mod:`~repro.durability.database` — :class:`DurableDatabase`:
  WAL-before-apply, begin/commit/rollback, replay on open, atomic
  snapshot-then-truncate compaction;
* :mod:`~repro.durability.neural` — :class:`DurableNeuralDatabase`:
  the persisted fact log behind NeuralDB;
* :mod:`~repro.durability.harness` — randomized DML workloads and the
  crash matrix (crash at every reachable point, reopen, verify).
"""

from repro.durability.crash import CrashInjector
from repro.durability.io import (
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
    fsync_handle,
)
from repro.durability.wal import (
    WALReadResult,
    WriteAheadLog,
    encode_record,
    read_wal,
    scan_wal_bytes,
)
from repro.durability.database import (
    DurableDatabase,
    RecoveryStats,
    dump_database,
    dump_table,
    restore_database,
    restore_table,
    write_snapshot,
)
from repro.durability.neural import DurableNeuralDatabase
from repro.durability.harness import (
    CrashMatrixReport,
    TrialResult,
    discover_crash_points,
    random_dml_workload,
    run_crash_matrix,
    run_crash_trial,
)

__all__ = [
    "CrashInjector",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "fsync_handle",
    "WALReadResult",
    "WriteAheadLog",
    "encode_record",
    "read_wal",
    "scan_wal_bytes",
    "DurableDatabase",
    "RecoveryStats",
    "dump_database",
    "dump_table",
    "restore_database",
    "restore_table",
    "write_snapshot",
    "DurableNeuralDatabase",
    "CrashMatrixReport",
    "TrialResult",
    "discover_crash_points",
    "random_dml_workload",
    "run_crash_matrix",
    "run_crash_trial",
]
