"""Candidate query enumeration for claim verification.

AggChecker's key idea: the space of plausible interpretations of a
claim over one table is small enough to enumerate — every combination
of aggregate, column, and (categorical) filter — and the problem
becomes *ranking* candidates against the claim text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.factcheck.claims import ClaimWorkload


@dataclass(frozen=True)
class CandidateQuery:
    """One interpretation: aggregate, target column, optional filter."""

    agg: str
    column: Optional[str]
    filter_value: Optional[str]

    def sql(self, workload: ClaimWorkload) -> str:
        where = (
            f" WHERE {workload.cat_col} = '{self.filter_value}'"
            if self.filter_value
            else ""
        )
        if self.agg == "count":
            return f"SELECT COUNT(*) FROM {workload.table}{where}"
        return f"SELECT {self.agg.upper()}({self.column}) FROM {workload.table}{where}"

    def description(self) -> str:
        """A canonical NL-ish rendering used by rankers."""
        head = "count" if self.agg == "count" else f"{self.agg} {self.column}"
        where = f" where {self.filter_value}" if self.filter_value else " overall"
        return head + where

    def execute(self, workload: ClaimWorkload) -> float:
        value = workload.db.execute(self.sql(workload)).scalar()
        return round(float(value if value is not None else 0.0), 1)


def enumerate_candidates(workload: ClaimWorkload) -> List[CandidateQuery]:
    """All (agg, column, filter) interpretations for the workload table."""
    filters: List[Optional[str]] = [None] + list(workload.cat_values)
    candidates: List[CandidateQuery] = []
    for filter_value in filters:
        candidates.append(
            CandidateQuery(agg="count", column=None, filter_value=filter_value)
        )
        for agg in ("avg", "max", "min", "sum"):
            for column in workload.num_cols:
                candidates.append(
                    CandidateQuery(agg=agg, column=column, filter_value=filter_value)
                )
    return candidates
