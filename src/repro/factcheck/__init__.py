"""Data-driven fact checking (§2.5: AggChecker [35], Scrutinizer [36]).

Natural-language claims about a relational table are verified by
translating each claim into a candidate aggregate query, executing it,
and comparing the claimed value against the computed one.

Two claim-to-query rankers are provided:

* :class:`KeywordRanker` — lexical matching of claim words against
  query descriptions (the classical starting point);
* :class:`LMRanker` — a fine-tuned causal LM scores each candidate
  query as a continuation of the claim (AggChecker's neural ranking).
"""

from repro.factcheck.claims import (
    Claim,
    ClaimWorkload,
    generate_claim_workload,
)
from repro.factcheck.queries import CandidateQuery, enumerate_candidates
from repro.factcheck.rankers import KeywordRanker, LMRanker, train_lm_ranker
from repro.factcheck.verify import (
    FactChecker,
    Verdict,
    VerificationResult,
    evaluate_checker,
)

__all__ = [
    "Claim",
    "ClaimWorkload",
    "generate_claim_workload",
    "CandidateQuery",
    "enumerate_candidates",
    "KeywordRanker",
    "LMRanker",
    "train_lm_ranker",
    "FactChecker",
    "Verdict",
    "VerificationResult",
    "evaluate_checker",
]
