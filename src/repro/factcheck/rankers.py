"""Claim-to-query rankers: lexical keywords vs a fine-tuned LM."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import cross_entropy
from repro.errors import FactCheckError
from repro.factcheck.claims import Claim, ClaimWorkload
from repro.factcheck.queries import CandidateQuery, enumerate_candidates
from repro.models import GPTModel, ModelConfig
from repro.prompting import score_continuation
from repro.tokenizers import WhitespaceTokenizer
from repro.training.data import IGNORE_INDEX
from repro.training.optim import AdamW
from repro.utils.rng import SeededRNG
from repro.utils.text import simple_word_tokenize

_AGG_KEYWORDS = {
    "count": ["many", "number", "consists", "employs", "total number", "overall"],
    "avg": ["average", "mean"],
    "max": ["highest", "maximum", "exceeds"],
    "min": ["lowest", "minimum"],
    "sum": ["combined", "total"],
}


class KeywordRanker:
    """Score candidates by lexical overlap between claim and description."""

    def rank(
        self, claim_text: str, candidates: Sequence[CandidateQuery]
    ) -> List[Tuple[CandidateQuery, float]]:
        words = set(simple_word_tokenize(claim_text.lower()))
        scored = []
        for candidate in candidates:
            score = 0.0
            for keyword in _AGG_KEYWORDS.get(candidate.agg, []):
                if keyword in claim_text.lower():
                    score += 1.0
            if candidate.column and candidate.column in words:
                score += 2.0
            if candidate.filter_value:
                if candidate.filter_value in words:
                    score += 2.0
                else:
                    score -= 1.0
            scored.append((candidate, score))
        scored.sort(key=lambda pair: -pair[1])
        return scored

    def best(self, claim_text: str, candidates: Sequence[CandidateQuery]) -> CandidateQuery:
        return self.rank(claim_text, candidates)[0][0]


class LMRanker:
    """Rank candidates by LM likelihood of ``claim ; query : <description>``."""

    def __init__(self, model: GPTModel, tokenizer) -> None:
        self.model = model
        self.tokenizer = tokenizer

    def rank(
        self, claim_text: str, candidates: Sequence[CandidateQuery]
    ) -> List[Tuple[CandidateQuery, float]]:
        prompt = f"claim : {claim_text} ; query :"
        scored = []
        for candidate in candidates:
            description = candidate.description()
            length = max(len(simple_word_tokenize(description)), 1)
            score = score_continuation(
                self.model, self.tokenizer, prompt, description
            ) / length
            scored.append((candidate, score))
        scored.sort(key=lambda pair: -pair[1])
        return scored

    def best(self, claim_text: str, candidates: Sequence[CandidateQuery]) -> CandidateQuery:
        return self.rank(claim_text, candidates)[0][0]


def train_lm_ranker(
    workload: ClaimWorkload,
    train_claims: Sequence[Claim],
    steps: int = 200,
    dim: int = 48,
    seq_len: int = 48,
    lr: float = 3e-3,
    seed: int = 0,
) -> LMRanker:
    """Fine-tune a small LM on (claim text -> gold query description)."""
    if not train_claims:
        raise FactCheckError("no training claims")
    texts = []
    for claim in train_claims:
        gold = CandidateQuery(
            agg=claim.agg, column=claim.column, filter_value=claim.filter_value
        )
        texts.append(f"claim : {claim.text} ; query : {gold.description()}")
    # Ensure every candidate description is in-vocabulary.
    vocab_texts = texts + [c.description() for c in enumerate_candidates(workload)]
    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(vocab_texts, vocab_size=2048)

    config = ModelConfig(
        vocab_size=tokenizer.vocab_size,
        max_seq_len=seq_len,
        dim=dim,
        num_layers=2,
        num_heads=max(2, dim // 16),
        ff_dim=4 * dim,
        causal=True,
    )
    model = GPTModel(config, seed=seed)
    rows = []
    for text in texts:
        ids = tokenizer.encode(text, add_bos=True, add_eos=True, max_length=seq_len).ids
        rows.append(ids + [tokenizer.vocab.pad_id] * (seq_len - len(ids)))
    data = np.array(rows, dtype=np.int64)

    rng = SeededRNG(seed)
    optimizer = AdamW(model.parameters(), lr=lr)
    model.train()
    n = data.shape[0]
    pad = tokenizer.vocab.pad_id
    for _ in range(steps):
        idx = rng.generator.choice(n, size=min(16, n), replace=False)
        inputs = data[idx, :-1]
        targets = data[idx, 1:].copy()
        targets[targets == pad] = IGNORE_INDEX
        logits = model(inputs)
        loss = cross_entropy(
            logits.reshape(-1, config.vocab_size),
            targets.reshape(-1),
            ignore_index=IGNORE_INDEX,
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.clip_grad_norm(1.0)
        optimizer.step()
    model.eval()
    return LMRanker(model=model, tokenizer=tokenizer)
