"""Claim generation: NL statements about a table, half of them wrong."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sql import Database
from repro.utils.rng import SeededRNG

_DOMAIN = {
    "table": "employees",
    "num_cols": ["salary", "age"],
    "cat_col": "department",
    "cat_values": ["engineering", "sales", "marketing", "finance"],
}


@dataclass(frozen=True)
class Claim:
    """One natural-language claim with its gold interpretation.

    ``agg``/``column``/``filter_value`` describe the *correct* query for
    the claim; ``claimed_value`` is what the text asserts and ``truthful``
    whether that matches the data.
    """

    text: str
    agg: str                      # count | avg | max | min | sum
    column: Optional[str]         # None for COUNT(*)
    filter_value: Optional[str]   # categorical filter, or None
    claimed_value: float
    truthful: bool


@dataclass
class ClaimWorkload:
    """A database plus claims to verify against it."""

    db: Database
    table: str
    num_cols: List[str]
    cat_col: str
    cat_values: List[str]
    claims: List[Claim] = field(default_factory=list)

    def split(self, test_fraction: float, seed: int = 0) -> Tuple[List[Claim], List[Claim]]:
        rng = SeededRNG(seed)
        shuffled = rng.shuffled(self.claims)
        cut = max(1, int(len(shuffled) * test_fraction))
        return shuffled[cut:], shuffled[:cut]


def generate_claim_workload(
    num_rows: int = 40, num_claims: int = 60, seed: int = 0
) -> ClaimWorkload:
    """Build a populated table and a balanced true/false claim set."""
    rng = SeededRNG(seed)
    db = Database()
    table = _DOMAIN["table"]
    num_a, num_b = _DOMAIN["num_cols"]
    cat_col = _DOMAIN["cat_col"]
    db.execute(
        f"CREATE TABLE {table} (name TEXT, {cat_col} TEXT, {num_a} INT, {num_b} INT)"
    )
    for i in range(num_rows):
        db.execute(
            f"INSERT INTO {table} VALUES ('person{i}', "
            f"'{rng.choice(_DOMAIN['cat_values'])}', "
            f"{rng.randint(40, 160)}, {rng.randint(22, 65)})"
        )

    workload = ClaimWorkload(
        db=db,
        table=table,
        num_cols=list(_DOMAIN["num_cols"]),
        cat_col=cat_col,
        cat_values=list(_DOMAIN["cat_values"]),
    )
    workload.claims = _generate_claims(workload, num_claims, rng.spawn("claims"))
    return workload


# Transparent templates name the aggregate and column directly; synonym
# templates paraphrase them (earn -> salary, senior -> age, headcount ->
# count). A fixed keyword list resolves the former but not the latter —
# the gap the learned ranker closes.
_COUNT_TEMPLATES = [
    "there are {value} {table} in {filter}",
    "the {filter} team consists of {value} {table}",
    "{filter} has a headcount of {value}",
    "{filter} staffing stands at {value} people",
]
_COUNT_ALL_TEMPLATES = [
    "the company has {value} {table} in total",
    "company wide headcount stands at {value}",
]
_AGG_TEMPLATES = {
    ("avg", "salary"): [
        "the average salary of {filter} {table} is {value}",
        "{filter} {table} earn {value} on average",
        "typical pay in {filter} comes to {value}",
    ],
    ("avg", "age"): [
        "the average age of {filter} {table} is {value}",
        "{filter} {table} are {value} years old on average",
        "the typical {filter} employee is {value} years old",
    ],
    ("max", "salary"): [
        "the highest salary among {filter} {table} is {value}",
        "the best paid person in {filter} makes {value}",
    ],
    ("max", "age"): [
        "the highest age among {filter} {table} is {value}",
        "the most senior person in {filter} is {value} years old",
    ],
    ("min", "salary"): [
        "the lowest salary among {filter} {table} is {value}",
        "the worst paid person in {filter} makes {value}",
    ],
    ("min", "age"): [
        "the lowest age among {filter} {table} is {value}",
        "the youngest person in {filter} is {value} years old",
    ],
    ("sum", "salary"): [
        "the combined salary of {filter} {table} is {value}",
        "the {filter} payroll amounts to {value}",
    ],
    ("sum", "age"): [
        "the combined age of {filter} {table} is {value}",
        "the ages across {filter} add up to {value}",
    ],
}


def _generate_claims(
    workload: ClaimWorkload, num_claims: int, rng: SeededRNG
) -> List[Claim]:
    claims: List[Claim] = []
    for i in range(num_claims):
        truthful = i % 2 == 0
        use_filter = rng.coin(0.8)
        filter_value = rng.choice(workload.cat_values) if use_filter else None
        agg = rng.choice(["count", "avg", "max", "min", "sum"])
        column = None if agg == "count" else rng.choice(workload.num_cols)

        true_value = _evaluate(workload, agg, column, filter_value)
        if truthful:
            claimed = true_value
        else:
            delta = max(2.0, abs(true_value) * 0.25)
            sign = 1 if rng.coin(0.5) else -1
            claimed = round(true_value + sign * delta, 1)

        text = _render_claim(workload, agg, column, filter_value, claimed, rng)
        claims.append(
            Claim(
                text=text,
                agg=agg,
                column=column,
                filter_value=filter_value,
                claimed_value=claimed,
                truthful=truthful,
            )
        )
    return claims


def _evaluate(
    workload: ClaimWorkload,
    agg: str,
    column: Optional[str],
    filter_value: Optional[str],
) -> float:
    where = f" WHERE {workload.cat_col} = '{filter_value}'" if filter_value else ""
    if agg == "count":
        sql = f"SELECT COUNT(*) FROM {workload.table}{where}"
    else:
        sql = f"SELECT {agg.upper()}({column}) FROM {workload.table}{where}"
    value = workload.db.execute(sql).scalar()
    return round(float(value if value is not None else 0.0), 1)


def _render_claim(
    workload: ClaimWorkload,
    agg: str,
    column: Optional[str],
    filter_value: Optional[str],
    value: float,
    rng: SeededRNG,
) -> str:
    rendered_value = int(value) if float(value).is_integer() else value
    if agg == "count":
        if filter_value is None:
            template = rng.choice(_COUNT_ALL_TEMPLATES)
            return template.format(value=rendered_value, table=workload.table)
        template = rng.choice(_COUNT_TEMPLATES)
        return template.format(
            value=rendered_value, table=workload.table, filter=filter_value
        )
    template = rng.choice(_AGG_TEMPLATES[(agg, column)])
    return template.format(
        filter=filter_value if filter_value else "all",
        table=workload.table,
        value=rendered_value,
    )
