"""Claim verification: interpret, execute, compare, and report verdicts."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.factcheck.claims import Claim, ClaimWorkload
from repro.factcheck.queries import CandidateQuery, enumerate_candidates


class Verdict(enum.Enum):
    """The outcome of verifying one claim against the data."""

    SUPPORTED = "SUPPORTED"
    REFUTED = "REFUTED"


@dataclass
class VerificationResult:
    """The verdict, the query used, and the computed value."""

    claim: Claim
    verdict: Verdict
    query: CandidateQuery
    computed_value: float

    @property
    def correct(self) -> bool:
        """Did the verdict agree with the gold truthfulness label?"""
        return (self.verdict is Verdict.SUPPORTED) == self.claim.truthful

    @property
    def interpreted_correctly(self) -> bool:
        """Did the ranker pick the claim's gold interpretation?"""
        return (
            self.query.agg == self.claim.agg
            and self.query.column == self.claim.column
            and self.query.filter_value == self.claim.filter_value
        )


class FactChecker:
    """Verifies claims: rank interpretations, execute the best, compare.

    ``tolerance`` is the relative error under which a claimed value
    counts as matching the computed one (claims often round).
    """

    def __init__(self, workload: ClaimWorkload, ranker, tolerance: float = 0.02) -> None:
        self.workload = workload
        self.ranker = ranker
        self.tolerance = tolerance
        self._candidates = enumerate_candidates(workload)

    def verify(self, claim: Claim) -> VerificationResult:
        """Produce a verdict for one claim."""
        best = self.ranker.best(claim.text, self._candidates)
        computed = best.execute(self.workload)
        matches = self._values_match(claim.claimed_value, computed)
        verdict = Verdict.SUPPORTED if matches else Verdict.REFUTED
        return VerificationResult(
            claim=claim, verdict=verdict, query=best, computed_value=computed
        )

    def _values_match(self, claimed: float, computed: float) -> bool:
        if computed == 0.0:
            return abs(claimed) < 1e-9
        return abs(claimed - computed) / abs(computed) <= self.tolerance


def evaluate_checker(
    checker: FactChecker, claims: Sequence[Claim]
) -> Dict[str, float]:
    """Verdict accuracy and interpretation accuracy over ``claims``."""
    results = [checker.verify(claim) for claim in claims]
    return {
        "verdict_accuracy": sum(r.correct for r in results) / len(results),
        "interpretation_accuracy": (
            sum(r.interpreted_correctly for r in results) / len(results)
        ),
    }
