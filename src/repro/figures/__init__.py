"""Reproduction of the paper's Figure 1."""

from repro.figures.param_evolution import (
    FigurePoint,
    figure1_points,
    render_figure1_ascii,
    growth_orders_of_magnitude,
)
from repro.figures.attention_viz import attention_matrix, render_attention

__all__ = [
    "FigurePoint",
    "figure1_points",
    "render_figure1_ascii",
    "growth_orders_of_magnitude",
    "attention_matrix",
    "render_attention",
]
