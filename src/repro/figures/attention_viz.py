"""ASCII visualization of attention weights (the §2.1 teaching aid).

The tutorial explains the Transformer through its attention mechanism;
this utility renders what a trained model actually attends to — the
classic token-by-token heatmap — entirely in text.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.errors import ModelError
from repro.models import BERTModel, GPTModel
from repro.tokenizers import Tokenizer

_SHADES = " .:-=+*#%@"


def attention_matrix(
    model: Union[GPTModel, BERTModel],
    tokenizer: Tokenizer,
    text: str,
    layer: int = -1,
    head: int = 0,
) -> tuple[List[str], np.ndarray]:
    """Run ``text`` through the model; return (tokens, attention T x T)."""
    encoding = tokenizer.encode(text)
    if not encoding.ids:
        raise ModelError("cannot visualize attention over empty input")
    ids = np.array([encoding.ids], dtype=np.int64)
    from repro.autograd import no_grad

    with no_grad():
        model.encode(ids)
    blocks = model.stack.blocks
    attention = blocks[layer].attn.last_attention
    if attention is None:
        raise ModelError("no attention recorded; run a forward pass first")
    if not 0 <= head < attention.shape[1]:
        raise ModelError(f"head {head} out of range [0, {attention.shape[1]})")
    tokens = [tokenizer.vocab.token_of(i) for i in encoding.ids]
    return tokens, attention[0, head]


def render_attention(
    model: Union[GPTModel, BERTModel],
    tokenizer: Tokenizer,
    text: str,
    layer: int = -1,
    head: int = 0,
    cell_width: int = 2,
) -> str:
    """Render the attention heatmap as an ASCII grid.

    Rows are query positions, columns key positions; darker glyphs mean
    more attention mass. Causal models show an empty upper triangle —
    the masking §2.1 explains.
    """
    tokens, weights = attention_matrix(model, tokenizer, text, layer, head)
    label_width = max(len(t) for t in tokens) + 1
    lines = [f"attention (layer {layer}, head {head}) for: {text!r}", ""]
    header = " " * label_width + "".join(
        t[:cell_width].ljust(cell_width) for t in tokens
    )
    lines.append(header)
    for token, row in zip(tokens, weights):
        cells = []
        for weight in row:
            shade = _SHADES[min(int(weight * (len(_SHADES) - 1) * 2), len(_SHADES) - 1)]
            cells.append(shade * 1 + " " * (cell_width - 1))
        lines.append(token.ljust(label_width) + "".join(cells))
    lines.append("")
    lines.append("scale: ' ' = 0  ...  '@' = high attention")
    return "\n".join(lines)
