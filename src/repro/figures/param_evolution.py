"""Figure 1: evolution of parameter counts in language models.

The paper plots the parameter counts of well-known language models over
their release years on a logarithmic y-axis. Here every point is
*computed* from the model's architecture via the same counting formulas
our own Transformer uses (see :mod:`repro.models.registry`), and the
figure is rendered as a log-scale ASCII scatter plot plus the underlying
data table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.models.registry import HISTORICAL_MODELS, HistoricalModel


@dataclass(frozen=True)
class FigurePoint:
    """One point of Figure 1."""

    name: str
    year: float
    estimated_params: int
    published_params: int
    relative_error: float


def figure1_points() -> List[FigurePoint]:
    """All models of Figure 1, parameter counts computed from architecture."""
    return [
        FigurePoint(
            name=model.name,
            year=model.year,
            estimated_params=model.estimated_params(),
            published_params=model.published_params,
            relative_error=model.relative_error(),
        )
        for model in HISTORICAL_MODELS
    ]


def growth_orders_of_magnitude() -> float:
    """log10 growth of parameter counts across the timeline."""
    points = figure1_points()
    return math.log10(
        max(p.estimated_params for p in points)
        / min(p.estimated_params for p in points)
    )


def render_figure1_ascii(width: int = 72, height: int = 18) -> str:
    """Render the figure as a log-scale ASCII scatter plot."""
    points = figure1_points()
    years = [p.year for p in points]
    logs = [math.log10(p.estimated_params) for p in points]
    year_min, year_max = min(years), max(years)
    log_min, log_max = math.floor(min(logs)), math.ceil(max(logs))

    grid = [[" "] * width for _ in range(height)]
    labels: List[str] = []
    for index, point in enumerate(points):
        x = int((point.year - year_min) / (year_max - year_min) * (width - 1))
        y = int(
            (math.log10(point.estimated_params) - log_min)
            / (log_max - log_min)
            * (height - 1)
        )
        row = height - 1 - y
        marker = chr(ord("A") + index)
        grid[row][x] = marker
        labels.append(
            f"  {marker} = {point.name} ({point.year:.1f}, "
            f"{point.estimated_params / 1e9:.2f}B params)"
        )

    lines = ["Figure 1: Evolution of parameter counts in language models",
             f"y-axis: log10(parameters), {log_min} to {log_max} | "
             f"x-axis: year, {year_min:.0f} to {year_max:.0f}", ""]
    for row_index, row in enumerate(grid):
        log_label = log_max - (log_max - log_min) * row_index / (height - 1)
        lines.append(f"10^{log_label:4.1f} |" + "".join(row))
    lines.append("       +" + "-" * width)
    lines.extend(labels)
    return "\n".join(lines)
