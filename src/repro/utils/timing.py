"""Lightweight timing helper for examples and benchmarks."""

from __future__ import annotations

import time


class Timer:
    """A context manager that records elapsed wall-clock seconds.

    Example::

        with Timer() as t:
            run_workload()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start
