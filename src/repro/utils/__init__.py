"""Shared utilities: seeded randomness, text helpers, and timing."""

from repro.utils.rng import SeededRNG, spawn_rng
from repro.utils.text import (
    normalize_whitespace,
    sentence_split,
    simple_word_tokenize,
    levenshtein,
    jaccard,
)
from repro.utils.timing import Timer

__all__ = [
    "SeededRNG",
    "spawn_rng",
    "normalize_whitespace",
    "sentence_split",
    "simple_word_tokenize",
    "levenshtein",
    "jaccard",
    "Timer",
]
