"""Synthetic text corpora for pre-training demos and tests.

The generators produce English-like sentences with learnable structure
(subject-verb-adjective-object grammar over database vocabulary), small
enough to pre-train our from-scratch models in seconds yet regular
enough that a trained model demonstrably prefers grammatical
continuations.
"""

from __future__ import annotations

from typing import List

from repro.utils.rng import SeededRNG

SUBJECTS = ["the database", "the table", "the index", "the query", "the model",
            "the engine", "the optimizer", "the buffer"]
VERBS = ["stores", "scans", "joins", "returns", "updates", "caches", "sorts",
         "filters"]
OBJECTS = ["rows", "columns", "tuples", "results", "records", "pages",
           "partitions", "keys"]
ADJECTIVES = ["large", "small", "sorted", "cached", "empty", "fresh",
              "compressed", "remote"]


def synthetic_db_corpus(num_docs: int = 80, seed: int = 7) -> List[str]:
    """Documents of SVO sentences over database vocabulary."""
    rng = SeededRNG(seed)
    docs = []
    for _ in range(num_docs):
        sentences = []
        for _ in range(rng.randint(2, 5)):
            sentences.append(
                f"{rng.choice(SUBJECTS)} {rng.choice(VERBS)} "
                f"{rng.choice(ADJECTIVES)} {rng.choice(OBJECTS)} ."
            )
        docs.append(" ".join(sentences))
    return docs


def copy_task_corpus(
    num_docs: int = 200, vocab: int = 12, length: int = 6, seed: int = 13
) -> List[str]:
    """A long-range-dependency task: ``a b c ... copy a b c ...``.

    Solving it requires recalling tokens from many positions back —
    the task family where attention decisively beats recurrence
    (the Section 2.1 "rise of the Transformer" demo).
    """
    rng = SeededRNG(seed)
    symbols = [f"tok{i}" for i in range(vocab)]
    docs = []
    for _ in range(num_docs):
        seq = [rng.choice(symbols) for _ in range(length)]
        docs.append(" ".join(seq) + " copy " + " ".join(seq))
    return docs
