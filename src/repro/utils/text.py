"""Small text-processing helpers used across subsystems."""

from __future__ import annotations

import re
from typing import List

_WHITESPACE_RE = re.compile(r"\s+")
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")
_WORD_RE = re.compile(r"[A-Za-z0-9_']+|[^\sA-Za-z0-9_']")


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip the ends."""
    return _WHITESPACE_RE.sub(" ", text).strip()


def sentence_split(text: str) -> List[str]:
    """Split text into sentences on ``.!?`` boundaries (best effort)."""
    text = normalize_whitespace(text)
    if not text:
        return []
    return [s for s in _SENTENCE_RE.split(text) if s]


def simple_word_tokenize(text: str) -> List[str]:
    """Split text into words and single punctuation marks."""
    return _WORD_RE.findall(text)


def levenshtein(a: str, b: str) -> int:
    """Return the edit distance between two strings (iterative DP)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def jaccard(a: str, b: str) -> float:
    """Return the Jaccard similarity of the word sets of two strings."""
    sa = set(simple_word_tokenize(a.lower()))
    sb = set(simple_word_tokenize(b.lower()))
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)
