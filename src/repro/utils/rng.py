"""Deterministic random-number utilities.

Everything stochastic in this library (weight init, data generation,
sampling-based decoding) flows through a :class:`SeededRNG` so that
experiments are exactly reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


class SeededRNG:
    """A thin, typed wrapper around :class:`numpy.random.Generator`.

    The wrapper exists for two reasons: it gives every subsystem a single
    seeding idiom, and it adds small conveniences (``choice`` over Python
    sequences with correct typing, ``spawn`` for independent substreams).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._gen = np.random.default_rng(self.seed)

    # -- scalar draws ---------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Return one float drawn uniformly from ``[low, high)``."""
        return float(self._gen.uniform(low, high))

    def randint(self, low: int, high: int) -> int:
        """Return one integer drawn uniformly from ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def random(self) -> float:
        """Return one float in ``[0, 1)``."""
        return float(self._gen.random())

    def coin(self, p_true: float = 0.5) -> bool:
        """Return ``True`` with probability ``p_true``."""
        return bool(self._gen.random() < p_true)

    # -- array draws ----------------------------------------------------
    def normal(self, shape: Sequence[int], std: float = 1.0) -> np.ndarray:
        """Return a float64 array of the given shape ~ N(0, std^2)."""
        return self._gen.normal(0.0, std, size=tuple(shape))

    def uniform_array(
        self, shape: Sequence[int], low: float = 0.0, high: float = 1.0
    ) -> np.ndarray:
        """Return a float64 array of the given shape ~ U[low, high)."""
        return self._gen.uniform(low, high, size=tuple(shape))

    def permutation(self, n: int) -> np.ndarray:
        """Return a random permutation of ``range(n)``."""
        return self._gen.permutation(n)

    # -- sequence helpers -------------------------------------------------
    def choice(self, items: Sequence[T]) -> T:
        """Return one uniformly chosen element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items))]

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Return ``k`` distinct elements of ``items`` in random order."""
        if k > len(items):
            raise ValueError(f"cannot sample {k} items from {len(items)}")
        idx = self._gen.choice(len(items), size=k, replace=False)
        return [items[int(i)] for i in idx]

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """Return a shuffled copy of ``items`` (the input is untouched)."""
        return [items[int(i)] for i in self.permutation(len(items))]

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Return one element drawn with the given (unnormalized) weights."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        w = np.asarray(weights, dtype=np.float64)
        if w.sum() <= 0:
            raise ValueError("weights must sum to a positive value")
        idx = self._gen.choice(len(items), p=w / w.sum())
        return items[int(idx)]

    # -- substreams -------------------------------------------------------
    def spawn(self, label: str) -> "SeededRNG":
        """Return an independent RNG derived from this seed and ``label``.

        Two spawns with different labels are statistically independent;
        spawning is stable across runs (same seed + label = same stream).
        """
        child_seed = (hash_label(label) ^ (self.seed * 0x9E3779B1)) % (2**31 - 1)
        return SeededRNG(child_seed)

    @property
    def generator(self) -> np.random.Generator:
        """Expose the underlying numpy generator for bulk operations."""
        return self._gen


def hash_label(label: str) -> int:
    """Stable (non-salted) 32-bit FNV-1a hash of a string label."""
    h = 0x811C9DC5
    for byte in label.encode("utf-8"):
        h ^= byte
        h = (h * 0x01000193) % (2**32)
    return h


def spawn_rng(seed: int, label: str) -> SeededRNG:
    """Shorthand for ``SeededRNG(seed).spawn(label)``."""
    return SeededRNG(seed).spawn(label)
