"""Budgeted profiling: test the pairs the predictor ranks highest."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.profiling.corpus import ColumnPair, SchemaCorpus, measure_correlation


def profiling_recall_at_budget(
    predictor,
    corpus: SchemaCorpus,
    pairs: Sequence[ColumnPair],
    budget: int,
    threshold: float = 0.7,
) -> Tuple[float, int]:
    """Scan the ``budget`` highest-ranked pairs; return (recall, found).

    A "true correlation" is a pair whose *measured* |Pearson r| on the
    actual data exceeds ``threshold``. Recall is the fraction of those
    the budgeted profiler discovers — the metric that shows why
    name-based prediction saves scans on wide tables.
    """
    if budget <= 0:
        raise ReproError("profiling budget must be positive")
    truly_correlated = {
        (p.left_name, p.right_name)
        for p in pairs
        if measure_correlation(corpus, p) >= threshold
    }
    if not truly_correlated:
        raise ReproError("no measured correlations above the threshold")
    ranked = sorted(pairs, key=lambda p: -predictor.probability(p))
    found = 0
    for pair in ranked[:budget]:
        if (pair.left_name, pair.right_name) in truly_correlated:
            found += 1
    return found / len(truly_correlated), found
