"""Correlation prediction from column names: LM vs token overlap."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.models import BERTModel, ModelConfig
from repro.nn import Linear, Module
from repro.profiling.corpus import ColumnPair
from repro.tokenizers import Tokenizer, WhitespaceTokenizer
from repro.training.metrics import accuracy, precision_recall_f1
from repro.utils.rng import SeededRNG


class TokenOverlapBaseline:
    """Predict correlated iff the names share a non-numeric token."""

    def probability(self, pair: ColumnPair) -> float:
        left = {t for t in pair.left_name.split("_") if not t.isdigit()}
        right = {t for t in pair.right_name.split("_") if not t.isdigit()}
        return 1.0 if left & right else 0.0

    def predict(self, pair: ColumnPair) -> bool:
        return self.probability(pair) >= 0.5


class _PairHead(Module):
    """Siamese head: classify from the elementwise product ``u * v``.

    A linear layer over ``u * v`` realizes a diagonal bilinear form
    ``u^T diag(w) v`` — enough to represent "the two names denote the
    same concept" once fine-tuning aligns synonym embeddings, and far
    more sample-efficient than a cross-encoder on a pooled bag.
    """

    def __init__(self, backbone: BERTModel, seed: int = 0) -> None:
        super().__init__()
        self.backbone = backbone
        self.head = Linear(backbone.config.dim, 2, SeededRNG(seed).spawn("pair"))

    def forward(self, left, right):
        left_ids, left_mask = left
        right_ids, right_mask = right
        u = self.backbone.pooled(left_ids, left_mask)
        v = self.backbone.pooled(right_ids, right_mask)
        return self.head(u * v)


class NamePairClassifier:
    """Siamese encoder over the two column names (LM path)."""

    def __init__(self, head: _PairHead, tokenizer: Tokenizer, max_len: int) -> None:
        self._head = head
        self._tokenizer = tokenizer
        self._max_len = max_len

    def _encode(self, name: str):
        text = name.replace("_", " ")
        encoding = self._tokenizer.encode(
            text, max_length=self._max_len, pad_to=self._max_len
        )
        return (
            np.array([encoding.ids], dtype=np.int64),
            np.array([encoding.attention_mask], dtype=np.int64),
        )

    def probability(self, pair: ColumnPair) -> float:
        from repro.autograd import no_grad

        with no_grad():
            logits = self._head(
                self._encode(pair.left_name), self._encode(pair.right_name)
            )
        row = logits.data[0]
        exp = np.exp(row - row.max())
        return float(exp[1] / exp.sum())

    def predict(self, pair: ColumnPair) -> bool:
        return self.probability(pair) >= 0.5


def train_name_pair_classifier(
    train_pairs: Sequence[ColumnPair],
    epochs: int = 12,
    dim: int = 32,
    lr: float = 2e-3,
    seed: int = 0,
) -> NamePairClassifier:
    """Train the siamese name-pair classifier (balanced sampling)."""
    if not train_pairs:
        raise ReproError("no training pairs")
    from repro.autograd import cross_entropy
    from repro.training.optim import AdamW
    from repro.utils.rng import SeededRNG as RNG

    names = sorted(
        {p.left_name.replace("_", " ") for p in train_pairs}
        | {p.right_name.replace("_", " ") for p in train_pairs}
    )
    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(names, vocab_size=1024)
    max_len = max(len(tokenizer.encode(n).ids) for n in names) + 1

    config = ModelConfig(
        vocab_size=tokenizer.vocab_size, max_seq_len=max_len, dim=dim,
        num_layers=1, num_heads=2, ff_dim=4 * dim, causal=False,
    )
    head = _PairHead(BERTModel(config, seed=seed), seed=seed)
    classifier = NamePairClassifier(head=head, tokenizer=tokenizer, max_len=max_len)

    # Oversample positives to a balanced training stream.
    positives = [p for p in train_pairs if p.correlated]
    negatives = [p for p in train_pairs if not p.correlated]
    if not positives or not negatives:
        raise ReproError("training pairs must contain both classes")

    def encode_batch(pairs: List[ColumnPair]):
        left_ids = np.concatenate([classifier._encode(p.left_name)[0] for p in pairs])
        left_mask = np.concatenate([classifier._encode(p.left_name)[1] for p in pairs])
        right_ids = np.concatenate([classifier._encode(p.right_name)[0] for p in pairs])
        right_mask = np.concatenate([classifier._encode(p.right_name)[1] for p in pairs])
        labels = np.array([int(p.correlated) for p in pairs], dtype=np.int64)
        return (left_ids, left_mask), (right_ids, right_mask), labels

    rng = RNG(seed)
    optimizer = AdamW(head.parameters(), lr=lr)
    head.train()
    steps_per_epoch = max(len(train_pairs) // 16, 1)
    for _ in range(epochs):
        for _ in range(steps_per_epoch):
            batch = rng.sample(positives, min(8, len(positives)))
            batch += rng.sample(negatives, min(8, len(negatives)))
            left, right, labels = encode_batch(batch)
            logits = head(left, right)
            loss = cross_entropy(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.clip_grad_norm(1.0)
            optimizer.step()
    head.eval()
    return classifier


def evaluate_predictor(predictor, pairs: Sequence[ColumnPair]) -> Dict[str, float]:
    """Precision/recall/F1/accuracy against the gold labels."""
    predictions = [int(predictor.predict(p)) for p in pairs]
    labels = [int(p.correlated) for p in pairs]
    precision, recall, f1 = precision_recall_f1(predictions, labels)
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "accuracy": accuracy(predictions, labels),
    }
