"""NLP-enhanced data profiling (§2.5: [78], [87]).

Trummer's profiling line asks: can a language model predict *data*
properties from *metadata text* — e.g. whether two columns correlate,
judging only by their names? A profiler with that skill prioritizes
which column pairs to actually test, saving scans on wide tables.

This module reproduces the experiment:

* :func:`generate_schema_corpus` — synthetic schemas whose column-name
  semantics determine correlation (derived columns like ``total_price``
  correlate with ``unit_price``; unrelated names do not), plus actual
  data generated accordingly so predictions can be *verified* against
  measured correlations;
* :class:`NamePairClassifier` — a fine-tuned encoder predicting
  "correlated?" from the two names (the LM path);
* :class:`TokenOverlapBaseline` — the obvious heuristic;
* :func:`prioritized_profiling` — rank column pairs by predicted
  probability and measure how many true correlations the profiler finds
  within a budget of actual data scans.
"""

from repro.profiling.corpus import (
    ColumnPair,
    generate_schema_corpus,
    measure_correlation,
)
from repro.profiling.predictor import (
    NamePairClassifier,
    TokenOverlapBaseline,
    evaluate_predictor,
    train_name_pair_classifier,
)
from repro.profiling.prioritize import profiling_recall_at_budget

__all__ = [
    "ColumnPair",
    "generate_schema_corpus",
    "measure_correlation",
    "NamePairClassifier",
    "TokenOverlapBaseline",
    "train_name_pair_classifier",
    "evaluate_predictor",
    "profiling_recall_at_budget",
]
