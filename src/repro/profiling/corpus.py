"""Synthetic schemas with name-predictable correlations, plus real data.

Each schema draws *concepts*; a concept contributes a base column and,
sometimes, a derived column whose name is a morphological variant
(``price`` -> ``total_price``, ``discounted_price``). Derived columns
are generated as noisy functions of their base, so (base, derived)
pairs truly correlate in the data, while cross-concept pairs do not.
The column *names* therefore carry the signal a language model can
learn — and that the measured data can verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.utils.rng import SeededRNG

# Synonym groups: two columns drawn from the same group describe the
# same quantity under different names — they correlate in the data but
# share no name tokens, which is exactly what separates an LM that has
# learned word semantics from a string-overlap heuristic.
_SYNONYM_GROUPS = [
    ["price", "cost", "amount_due"],
    ["weight", "mass", "load"],
    ["salary", "wage", "pay"],
    ["age", "years", "seniority"],
    ["duration", "runtime", "elapsed"],
    ["distance", "mileage", "range"],
    ["score", "points", "grade"],
    ["speed", "velocity", "pace"],
]
_NOISE_COLUMNS = ["row_id", "batch_code", "shard_key", "checksum"]


@dataclass(frozen=True)
class ColumnPair:
    """A candidate pair with gold label and (optionally) measured data."""

    left_name: str
    right_name: str
    correlated: bool

    def text(self) -> str:
        """The classifier input for this pair."""
        left = self.left_name.replace("_", " ")
        right = self.right_name.replace("_", " ")
        return f"first column {left} second column {right}"


@dataclass
class SchemaCorpus:
    """Column pairs plus per-column data arrays for verification."""

    pairs: List[ColumnPair] = field(default_factory=list)
    data: Dict[str, np.ndarray] = field(default_factory=dict)


def generate_schema_corpus(
    num_schemas: int = 12,
    rows_per_schema: int = 60,
    seed: int = 0,
) -> SchemaCorpus:
    """Build a corpus of labeled column pairs with backing data."""
    rng = SeededRNG(seed)
    corpus = SchemaCorpus()
    for schema_index in range(num_schemas):
        groups = rng.sample(_SYNONYM_GROUPS, 3)
        gen = rng.spawn(f"schema{schema_index}").generator
        columns: Dict[str, np.ndarray] = {}
        partner_of: Dict[str, str] = {}
        for group in groups:
            first, second = rng.sample(group, 2)
            first_name = f"{first}_{schema_index}"
            second_name = f"{second}_{schema_index}"
            base = gen.normal(50, 15, size=rows_per_schema)
            noise = gen.normal(0, 4, size=rows_per_schema)
            columns[first_name] = base
            columns[second_name] = base * rng.uniform(1.2, 3.0) + noise
            partner_of[first_name] = second_name
            partner_of[second_name] = first_name
        noise_name = f"{rng.choice(_NOISE_COLUMNS)}_{schema_index}"
        columns[noise_name] = gen.normal(0, 1, size=rows_per_schema)

        names = list(columns)
        for i, left in enumerate(names):
            for right in names[i + 1:]:
                correlated = partner_of.get(left) == right
                corpus.pairs.append(
                    ColumnPair(left_name=left, right_name=right, correlated=correlated)
                )
        corpus.data.update(columns)
    if not corpus.pairs:
        raise ReproError("corpus generation produced no pairs")
    return corpus


def measure_correlation(corpus: SchemaCorpus, pair: ColumnPair) -> float:
    """|Pearson correlation| measured on the actual data (the scan)."""
    left = corpus.data[pair.left_name]
    right = corpus.data[pair.right_name]
    if left.std() == 0 or right.std() == 0:
        return 0.0
    return float(abs(np.corrcoef(left, right)[0, 1]))
