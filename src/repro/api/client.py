"""An OpenAI-style completion client over a :class:`ModelHub`.

Demonstrates the remote-API access channel from Section 2.4: engines are
addressed by name, requests carry decoding parameters, and responses
return structured choices plus token-usage accounting — the interface
shape of ``openai.Completion.create``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.generation import GenerationConfig, generate
from repro.generation.decoding import TokenConstraint
from repro.models import GPTModel
from repro.api.hub import ModelHub
from repro.nn import QuantizationReport, quantize_model, set_fused_attention
from repro.reliability.clock import Clock, SystemClock
from repro.serving import BatchRequest, BatchScheduler, PrefixCache, SemanticCache


@dataclass(frozen=True)
class Usage:
    """Token accounting for one request."""

    prompt_tokens: int
    completion_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass
class EngineStats:
    """Cumulative serving counters for one engine.

    The single counter surface for reliability metrics and batching:
    everything a client served is attributed to the engine that did the
    work. ``prompt_tokens`` bills the full prompt regardless of caching;
    ``prefix_hits``/``prefix_reused_tokens`` record how much of that
    billed prefill was actually served from the engine's prefix cache.
    ``queue_wait_seconds`` accumulates each batched request's
    admission→dispatch wait on the client's clock — the term that lets
    end-to-end latency be split into waiting vs decoding.

    The ``cache_*`` counters cover the semantic completion cache: a
    cache hit never reaches the engine, so it is *not* billed as a
    request or as prompt/completion tokens — instead the prefill and
    decode tokens it would have cost are recorded as skipped.
    """

    requests: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    prefix_hits: int = 0
    prefix_reused_tokens: int = 0
    batch_refills: int = 0
    draft_tokens: int = 0
    draft_accepted_tokens: int = 0
    verify_forwards: int = 0
    queue_wait_seconds: float = 0.0
    cache_lookups: int = 0
    cache_exact_hits: int = 0
    cache_similarity_hits: int = 0
    cache_skipped_prompt_tokens: int = 0
    cache_skipped_completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    @property
    def cache_hits(self) -> int:
        """Completions served from the semantic cache (no engine work)."""
        return self.cache_exact_hits + self.cache_similarity_hits

    @property
    def cache_hit_rate(self) -> float:
        if self.cache_lookups == 0:
            return 0.0
        return self.cache_hits / self.cache_lookups

    @property
    def cache_skipped_tokens(self) -> int:
        """Prefill + decode tokens the semantic cache saved this engine."""
        return (
            self.cache_skipped_prompt_tokens
            + self.cache_skipped_completion_tokens
        )

    @property
    def acceptance_rate(self) -> float:
        """Fraction of draft-proposed tokens the target model accepted."""
        if self.draft_tokens == 0:
            return 0.0
        return self.draft_accepted_tokens / self.draft_tokens


@dataclass(frozen=True)
class CompletionChoice:
    """One completion alternative."""

    text: str
    index: int
    finish_reason: str


@dataclass(frozen=True)
class CompletionResponse:
    """The full response of a completion request."""

    engine: str
    choices: List[CompletionChoice]
    usage: Usage

    @property
    def text(self) -> str:
        """The text of the first choice (the common access path)."""
        return self.choices[0].text


def _request_config(
    tokenizer, max_tokens: int, temperature: float, top_p: float, seed: int
) -> GenerationConfig:
    """Decoding config for one request (OpenAI temperature conventions)."""
    return GenerationConfig(
        max_new_tokens=max_tokens,
        strategy="greedy" if temperature == 0.0 else "sample",
        temperature=max(temperature, 1e-6) if temperature else 1.0,
        top_p=top_p,
        stop_ids=(tokenizer.vocab.eos_id,),
        seed=seed,
    )


def _finish_choice(
    tokenizer,
    out_ids: Sequence[int],
    index: int,
    stop: Sequence[str],
    max_tokens: int,
):
    """Decode, stop-truncate and bill one choice: (choice, billed tokens)."""
    text = tokenizer.decode(list(out_ids))
    truncated = False
    for stop_string in stop:
        cut = text.find(stop_string)
        if cut >= 0:
            text = text[:cut]
            truncated = True
    text = text.strip()
    if truncated:
        # Usage must bill the *returned* text, not the tokens
        # generated past the stop string.
        choice_tokens = len(tokenizer.encode(text).ids) if text else 0
        finish_reason = "stop"
    else:
        choice_tokens = len(out_ids)
        finish_reason = "length" if len(out_ids) >= max_tokens else "stop"
    return (
        CompletionChoice(text=text, index=index, finish_reason=finish_reason),
        choice_tokens,
    )


#: default per-engine prefix-cache byte budget
DEFAULT_PREFIX_CACHE_BYTES = 32 * 1024 * 1024


class CompletionClient:
    """Issue completion requests against named engines in a hub.

    Each engine gets a persistent :class:`~repro.serving.PrefixCache`
    (``prefix_cache_bytes`` budget; ``0`` disables) that survives across
    :meth:`complete_batch` calls, so a few-shot sweep only prefills its
    shared header once for the whole session. The cache is invalidated
    automatically when the hub re-registers the engine with a different
    model.

    Serving accelerations are opt-in constructor flags — all default
    off, keeping the plain path bit-identical to previous releases:

    * ``int8_weights`` serves each engine through an int8
      weight-quantized copy (:func:`repro.nn.quantize_model`;
      per-engine :meth:`quantization_report` gives the weight error).
    * ``fused_attention`` enables the blocked online-softmax attention
      kernel on the serving copy (numerically equivalent, not
      bit-identical — see :func:`repro.nn.fused_attention`).
    * ``speculative_draft`` names another hub engine to use as a
      speculative-decoding draft model for greedy requests; outputs
      stay token-identical while each target forward advances up to
      ``speculative_k + 1`` tokens.
    * ``semantic_cache_bytes`` enables the
      :class:`~repro.serving.SemanticCache`: repeated requests — same
      engine, prompt, and decode parameters — return their cached
      :class:`CompletionResponse` without any prefill *or* decode.
      Exact hits are byte-identical to re-decoding (generation is
      seeded-deterministic); near-duplicate hits change outputs, so
      they only run when a call passes ``allow_similar=True``. Cached
      entries are invalidated per engine on model identity, like the
      prefix cache. Constrained requests are never cached.

    The transformed serving copies (and their prefix caches) are cached
    per engine and rebuilt whenever the hub re-registers the model.
    """

    def __init__(
        self,
        hub: ModelHub,
        prefix_cache_bytes: int = DEFAULT_PREFIX_CACHE_BYTES,
        clock: Optional[Clock] = None,
        int8_weights: bool = False,
        fused_attention: bool = False,
        speculative_draft: Optional[str] = None,
        speculative_k: int = 4,
        semantic_cache_bytes: int = 0,
        semantic_cache: Optional[SemanticCache] = None,
    ) -> None:
        self.hub = hub
        self.prefix_cache_bytes = prefix_cache_bytes
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.int8_weights = int8_weights
        self.fused_attention = fused_attention
        self.speculative_draft = speculative_draft
        self.speculative_k = speculative_k
        if semantic_cache is not None:
            self.semantic_cache: Optional[SemanticCache] = semantic_cache
        elif semantic_cache_bytes > 0:
            self.semantic_cache = SemanticCache(max_bytes=semantic_cache_bytes)
        else:
            self.semantic_cache = None
        self._stats: Dict[str, EngineStats] = {}
        self._prefix_caches: Dict[str, Tuple[object, PrefixCache]] = {}
        #: engine -> hub model the semantic cache's entries were decoded by
        self._semcache_models: Dict[str, object] = {}
        # engine -> (hub model, serving copy, quantization report)
        self._serving_models: Dict[
            str, Tuple[object, object, Optional[QuantizationReport]]
        ] = {}

    def _serving_model(self, engine: str):
        """The model actually served for ``engine`` (transforms applied).

        With all acceleration flags off this is the hub's model object
        itself — no copy, bit-identical behavior. Otherwise a cached
        per-engine copy with int8 weights and/or fused attention,
        rebuilt whenever the hub re-registers the engine.
        """
        entry = self.hub.get(engine)
        model = entry.model
        if not isinstance(model, GPTModel):
            return model
        if not (self.int8_weights or self.fused_attention):
            return model
        stored = self._serving_models.get(engine)
        if stored is None or stored[0] is not model:
            report: Optional[QuantizationReport] = None
            if self.int8_weights:
                serving, report = quantize_model(model)
            else:
                serving = copy.deepcopy(model)
            if self.fused_attention:
                set_fused_attention(serving)
            stored = (model, serving, report)
            self._serving_models[engine] = stored
        return stored[1]

    def quantization_report(self, engine: str) -> Optional[QuantizationReport]:
        """Weight-error report for the engine's int8 serving copy.

        ``None`` unless the client was built with ``int8_weights=True``.
        """
        if not self.int8_weights:
            return None
        self._serving_model(engine)
        stored = self._serving_models.get(engine)
        return stored[2] if stored else None

    def _draft_model(self) -> Optional[GPTModel]:
        """The speculative draft engine's serving model (None if unset)."""
        if self.speculative_draft is None:
            return None
        draft = self._serving_model(self.speculative_draft)
        if not isinstance(draft, GPTModel):
            raise ModelError(
                f"speculative draft engine {self.speculative_draft!r} "
                "is not a causal (completion) model"
            )
        return draft

    def prefix_cache(self, engine: str) -> Optional[PrefixCache]:
        """The engine's prompt-prefix K/V cache (None when disabled).

        Cached K/V states are only valid for the exact model weights
        that produced them, so the cache is dropped whenever the hub
        entry's model changes — including when an acceleration flag
        swaps the serving copy (int8 K/V differ from float K/V).
        """
        if self.prefix_cache_bytes <= 0:
            return None
        model = self._serving_model(engine)
        stored = self._prefix_caches.get(engine)
        if stored is None or stored[0] is not model:
            stored = (model, PrefixCache(max_bytes=self.prefix_cache_bytes))
            self._prefix_caches[engine] = stored
        return stored[1]

    def _completion_cache(self, engine: str) -> Optional[SemanticCache]:
        """The semantic cache, with ``engine``'s entries identity-checked.

        Cached completions are only valid for the exact model that
        decoded them, so the engine's group is flushed whenever the hub
        re-registers it with a different model — the same invalidation
        rule as :meth:`prefix_cache`.
        """
        cache = self.semantic_cache
        if cache is None:
            return None
        model = self.hub.get(engine).model
        if self._semcache_models.get(engine) is not model:
            if engine in self._semcache_models:
                cache.invalidate(engine)
            self._semcache_models[engine] = model
        return cache

    @staticmethod
    def _cache_key(
        engine: str,
        prompt: str,
        max_tokens: int,
        temperature: float,
        top_p: float,
        n: int,
        stop: Sequence[str],
        seed: int,
    ) -> Tuple:
        """Exact-match key: everything that determines the response."""
        return (engine, prompt, max_tokens, temperature, top_p, n, tuple(stop), seed)

    def _record_cache_hit(self, engine: str, hit) -> CompletionResponse:
        stats = self.engine_stats(engine)
        if hit.kind == "exact":
            stats.cache_exact_hits += 1
        else:
            stats.cache_similarity_hits += 1
        stats.cache_skipped_prompt_tokens += hit.prompt_tokens
        stats.cache_skipped_completion_tokens += hit.completion_tokens
        return hit.value

    def _cache_insert(
        self, cache: SemanticCache, key: Tuple, engine: str, prompt: str,
        response: CompletionResponse,
    ) -> None:
        cache.insert(
            key,
            response,
            group=engine,
            text=prompt,
            prompt_tokens=response.usage.prompt_tokens,
            completion_tokens=response.usage.completion_tokens,
        )

    def complete(
        self,
        engine: str,
        prompt: str,
        max_tokens: int = 32,
        temperature: float = 0.0,
        top_p: float = 1.0,
        n: int = 1,
        stop: Sequence[str] = (),
        seed: int = 0,
        constraint: Optional[TokenConstraint] = None,
        allow_similar: bool = False,
    ) -> CompletionResponse:
        """Complete ``prompt`` with the named engine.

        ``temperature == 0`` selects greedy decoding (the OpenAI
        convention); positive temperatures sample. ``stop`` strings
        truncate each returned text at the first occurrence. With a
        semantic cache enabled, an exact repeat returns its cached
        response without touching the engine; ``allow_similar=True``
        additionally accepts a near-duplicate prompt's completion.
        """
        entry = self.hub.get(engine)
        if not isinstance(entry.model, GPTModel):
            raise ModelError(f"engine {engine!r} is not a causal (completion) model")
        model = self._serving_model(engine)
        tokenizer = entry.tokenizer
        if n <= 0:
            raise ModelError("n must be positive")
        cache = self._completion_cache(engine) if constraint is None else None
        key = None
        if cache is not None:
            key = self._cache_key(
                engine, prompt, max_tokens, temperature, top_p, n, stop, seed
            )
            self.engine_stats(engine).cache_lookups += 1
            hit = cache.lookup(
                key, group=engine, text=prompt, allow_similar=allow_similar
            )
            if hit is not None:
                return self._record_cache_hit(engine, hit)
        draft = self._draft_model()

        prompt_ids = tokenizer.encode(prompt, add_bos=True).ids
        choices: List[CompletionChoice] = []
        completion_tokens = 0
        for index in range(n):
            config = _request_config(
                tokenizer, max_tokens, temperature, top_p, seed + index
            )
            if draft is not None and config.strategy == "greedy":
                from repro.serving.speculative import speculative_generate

                out_ids = speculative_generate(
                    model, draft, prompt_ids, config, constraint,
                    k=self.speculative_k,
                )
            else:
                out_ids = generate(model, prompt_ids, config, constraint)
            choice, choice_tokens = _finish_choice(
                tokenizer, out_ids, index, stop, max_tokens
            )
            completion_tokens += choice_tokens
            choices.append(choice)
        stats = self.engine_stats(engine)
        stats.requests += 1
        stats.prompt_tokens += len(prompt_ids)
        stats.completion_tokens += completion_tokens
        response = CompletionResponse(
            engine=engine,
            choices=choices,
            usage=Usage(
                prompt_tokens=len(prompt_ids), completion_tokens=completion_tokens
            ),
        )
        if cache is not None:
            self._cache_insert(cache, key, engine, prompt, response)
        return response

    def complete_batch(
        self,
        engine: str,
        prompts: Sequence[str],
        max_tokens: int = 32,
        temperature: float = 0.0,
        top_p: float = 1.0,
        n: int = 1,
        stop: Sequence[str] = (),
        seed: int = 0,
        constraints: Optional[Sequence[Optional[TokenConstraint]]] = None,
        max_batch_size: int = 8,
        prefill_chunk: Optional[int] = None,
        prefix_caching: bool = True,
        continuous: bool = True,
        allow_similar: bool = False,
    ) -> List[CompletionResponse]:
        """Complete many prompts in one serving pass; one response per prompt.

        Decoding semantics match per-prompt :meth:`complete` — greedy at
        ``temperature == 0``, choice ``j`` samples with ``seed + j`` —
        but prompts share vectorized model forwards (and a request's
        ``n`` choices share one prompt prefill), so throughput scales
        with the batch instead of the per-request latency. By default
        the engine's persistent prefix cache skips re-prefilling shared
        prompt headers (``prefix_caching=False`` opts out) and the
        scheduler runs retire-and-admit continuous batching
        (``continuous=False`` restores barriered microbatches); both
        are token-identical to the defaults-off path. Engine usage is
        attributed exactly as if each prompt were a request of its own.
        ``constraints`` optionally carries one per-prompt decoding
        constraint, aligned with ``prompts``.

        With a semantic cache enabled, cached prompts (and exact
        duplicates *within* the batch) skip the engine entirely; only
        the remaining misses are scheduled. ``allow_similar=True``
        additionally serves near-duplicate prompts from the cache.
        """
        entry = self.hub.get(engine)
        if not isinstance(entry.model, GPTModel):
            raise ModelError(f"engine {engine!r} is not a causal (completion) model")
        model = self._serving_model(engine)
        tokenizer = entry.tokenizer
        if n <= 0:
            raise ModelError("n must be positive")
        if constraints is not None and len(constraints) != len(prompts):
            raise ModelError("constraints must align one-to-one with prompts")
        if not prompts:
            return []
        cache = self._completion_cache(engine)
        served: Dict[int, CompletionResponse] = {}
        keys: List[Optional[Tuple]] = [None] * len(prompts)
        duplicate_of: Dict[int, int] = {}
        to_run = list(range(len(prompts)))
        if cache is not None:
            to_run = []
            leaders: Dict[Tuple, int] = {}
            stats = self.engine_stats(engine)
            for i, prompt in enumerate(prompts):
                constraint = constraints[i] if constraints is not None else None
                if constraint is not None:
                    to_run.append(i)
                    continue
                key = self._cache_key(
                    engine, prompt, max_tokens, temperature, top_p, n, stop, seed
                )
                keys[i] = key
                stats.cache_lookups += 1
                hit = cache.lookup(
                    key, group=engine, text=prompt, allow_similar=allow_similar
                )
                if hit is not None:
                    served[i] = self._record_cache_hit(engine, hit)
                elif key in leaders:
                    # An exact duplicate earlier in this same batch will
                    # decode it; serve this copy from that result.
                    duplicate_of[i] = leaders[key]
                else:
                    leaders[key] = i
                    to_run.append(i)
            if not to_run:
                return [served[i] for i in range(len(prompts))]
        draft = self._draft_model()

        scheduler = BatchScheduler(
            model,
            max_batch_size=max_batch_size,
            prefill_chunk=prefill_chunk,
            prefix_cache=self.prefix_cache(engine) if prefix_caching else None,
            # Speculative decoding runs in barriered microbatches.
            continuous=continuous and draft is None,
            clock=self.clock,
            draft_model=draft,
            speculative_k=self.speculative_k,
            draft_prefix_cache=(
                self.prefix_cache(self.speculative_draft)
                if draft is not None and prefix_caching
                else None
            ),
        )
        config = _request_config(tokenizer, max_tokens, temperature, top_p, seed)
        tickets = []
        encoded = []
        for i in to_run:
            prompt_ids = tokenizer.encode(prompts[i], add_bos=True).ids
            encoded.append(prompt_ids)
            constraint = constraints[i] if constraints is not None else None
            tickets.append(
                scheduler.submit(
                    BatchRequest(prompt_ids, config, constraint=constraint, n=n)
                )
            )
        results = scheduler.run()

        stats = self.engine_stats(engine)
        # The scheduler is fresh per call, so its counters are this
        # call's deltas.
        stats.prefix_hits += scheduler.stats.prefix_hits
        stats.prefix_reused_tokens += scheduler.stats.prefix_reused_tokens
        stats.batch_refills += scheduler.stats.refills
        stats.draft_tokens += scheduler.stats.draft_tokens
        stats.draft_accepted_tokens += scheduler.stats.draft_accepted_tokens
        stats.verify_forwards += scheduler.stats.verify_forwards
        stats.queue_wait_seconds += scheduler.stats.queue_wait_total
        for i, prompt_ids, ticket in zip(to_run, encoded, tickets):
            choices: List[CompletionChoice] = []
            completion_tokens = 0
            for index, out_ids in enumerate(results[ticket].sequences):
                choice, choice_tokens = _finish_choice(
                    tokenizer, out_ids, index, stop, max_tokens
                )
                completion_tokens += choice_tokens
                choices.append(choice)
            stats.requests += 1
            stats.prompt_tokens += len(prompt_ids)
            stats.completion_tokens += completion_tokens
            response = CompletionResponse(
                engine=engine,
                choices=choices,
                usage=Usage(
                    prompt_tokens=len(prompt_ids),
                    completion_tokens=completion_tokens,
                ),
            )
            served[i] = response
            if cache is not None and keys[i] is not None:
                self._cache_insert(cache, keys[i], engine, prompts[i], response)
        for i, leader in duplicate_of.items():
            # Identical request, identical (deterministic) response; it
            # skipped decode, which is what the cache counters record.
            response = served[leader]
            stats.cache_exact_hits += 1
            stats.cache_skipped_prompt_tokens += response.usage.prompt_tokens
            stats.cache_skipped_completion_tokens += response.usage.completion_tokens
            served[i] = response
        return [served[i] for i in range(len(prompts))]

    def engine_stats(self, engine: str) -> EngineStats:
        """Cumulative counters for one engine (created on first use)."""
        if engine not in self._stats:
            self._stats[engine] = EngineStats()
        return self._stats[engine]

    @property
    def stats(self) -> Dict[str, EngineStats]:
        """Per-engine serving counters."""
        return self._stats

    @property
    def requests_served(self) -> int:
        """Total requests across all engines (legacy counter)."""
        return sum(s.requests for s in self._stats.values())
