"""An OpenAI-style completion client over a :class:`ModelHub`.

Demonstrates the remote-API access channel from Section 2.4: engines are
addressed by name, requests carry decoding parameters, and responses
return structured choices plus token-usage accounting — the interface
shape of ``openai.Completion.create``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ModelError
from repro.generation import GenerationConfig, generate
from repro.generation.decoding import TokenConstraint
from repro.models import GPTModel
from repro.api.hub import ModelHub


@dataclass(frozen=True)
class Usage:
    """Token accounting for one request."""

    prompt_tokens: int
    completion_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass
class EngineStats:
    """Cumulative serving counters for one engine.

    The single counter surface for reliability metrics and batching:
    everything a client served is attributed to the engine that did the
    work.
    """

    requests: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass(frozen=True)
class CompletionChoice:
    """One completion alternative."""

    text: str
    index: int
    finish_reason: str


@dataclass(frozen=True)
class CompletionResponse:
    """The full response of a completion request."""

    engine: str
    choices: List[CompletionChoice]
    usage: Usage

    @property
    def text(self) -> str:
        """The text of the first choice (the common access path)."""
        return self.choices[0].text


class CompletionClient:
    """Issue completion requests against named engines in a hub."""

    def __init__(self, hub: ModelHub) -> None:
        self.hub = hub
        self._stats: Dict[str, EngineStats] = {}

    def complete(
        self,
        engine: str,
        prompt: str,
        max_tokens: int = 32,
        temperature: float = 0.0,
        top_p: float = 1.0,
        n: int = 1,
        stop: Sequence[str] = (),
        seed: int = 0,
        constraint: Optional[TokenConstraint] = None,
    ) -> CompletionResponse:
        """Complete ``prompt`` with the named engine.

        ``temperature == 0`` selects greedy decoding (the OpenAI
        convention); positive temperatures sample. ``stop`` strings
        truncate each returned text at the first occurrence.
        """
        entry = self.hub.get(engine)
        model = entry.model
        if not isinstance(model, GPTModel):
            raise ModelError(f"engine {engine!r} is not a causal (completion) model")
        tokenizer = entry.tokenizer
        if n <= 0:
            raise ModelError("n must be positive")

        prompt_ids = tokenizer.encode(prompt, add_bos=True).ids
        choices: List[CompletionChoice] = []
        completion_tokens = 0
        for index in range(n):
            config = GenerationConfig(
                max_new_tokens=max_tokens,
                strategy="greedy" if temperature == 0.0 else "sample",
                temperature=max(temperature, 1e-6) if temperature else 1.0,
                top_p=top_p,
                stop_ids=(tokenizer.vocab.eos_id,),
                seed=seed + index,
            )
            out_ids = generate(model, prompt_ids, config, constraint)
            text = tokenizer.decode(out_ids)
            truncated = False
            for stop_string in stop:
                cut = text.find(stop_string)
                if cut >= 0:
                    text = text[:cut]
                    truncated = True
            text = text.strip()
            if truncated:
                # Usage must bill the *returned* text, not the tokens
                # generated past the stop string.
                choice_tokens = len(tokenizer.encode(text).ids) if text else 0
                finish_reason = "stop"
            else:
                choice_tokens = len(out_ids)
                finish_reason = "length" if len(out_ids) >= max_tokens else "stop"
            completion_tokens += choice_tokens
            choices.append(
                CompletionChoice(text=text, index=index, finish_reason=finish_reason)
            )
        stats = self.engine_stats(engine)
        stats.requests += 1
        stats.prompt_tokens += len(prompt_ids)
        stats.completion_tokens += completion_tokens
        return CompletionResponse(
            engine=engine,
            choices=choices,
            usage=Usage(
                prompt_tokens=len(prompt_ids), completion_tokens=completion_tokens
            ),
        )

    def engine_stats(self, engine: str) -> EngineStats:
        """Cumulative counters for one engine (created on first use)."""
        if engine not in self._stats:
            self._stats[engine] = EngineStats()
        return self._stats[engine]

    @property
    def stats(self) -> Dict[str, EngineStats]:
        """Per-engine serving counters."""
        return self._stats

    @property
    def requests_served(self) -> int:
        """Total requests across all engines (legacy counter)."""
        return sum(s.requests for s in self._stats.values())
