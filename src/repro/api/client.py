"""An OpenAI-style completion client over a :class:`ModelHub`.

Demonstrates the remote-API access channel from Section 2.4: engines are
addressed by name, requests carry decoding parameters, and responses
return structured choices plus token-usage accounting — the interface
shape of ``openai.Completion.create``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ModelError
from repro.generation import GenerationConfig, generate
from repro.generation.decoding import TokenConstraint
from repro.models import GPTModel
from repro.api.hub import ModelHub


@dataclass(frozen=True)
class Usage:
    """Token accounting for one request."""

    prompt_tokens: int
    completion_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass(frozen=True)
class CompletionChoice:
    """One completion alternative."""

    text: str
    index: int
    finish_reason: str


@dataclass(frozen=True)
class CompletionResponse:
    """The full response of a completion request."""

    engine: str
    choices: List[CompletionChoice]
    usage: Usage

    @property
    def text(self) -> str:
        """The text of the first choice (the common access path)."""
        return self.choices[0].text


class CompletionClient:
    """Issue completion requests against named engines in a hub."""

    def __init__(self, hub: ModelHub) -> None:
        self.hub = hub
        self._requests_served = 0

    def complete(
        self,
        engine: str,
        prompt: str,
        max_tokens: int = 32,
        temperature: float = 0.0,
        top_p: float = 1.0,
        n: int = 1,
        stop: Sequence[str] = (),
        seed: int = 0,
        constraint: Optional[TokenConstraint] = None,
    ) -> CompletionResponse:
        """Complete ``prompt`` with the named engine.

        ``temperature == 0`` selects greedy decoding (the OpenAI
        convention); positive temperatures sample. ``stop`` strings
        truncate each returned text at the first occurrence.
        """
        entry = self.hub.get(engine)
        model = entry.model
        if not isinstance(model, GPTModel):
            raise ModelError(f"engine {engine!r} is not a causal (completion) model")
        tokenizer = entry.tokenizer
        if n <= 0:
            raise ModelError("n must be positive")

        prompt_ids = tokenizer.encode(prompt, add_bos=True).ids
        choices: List[CompletionChoice] = []
        completion_tokens = 0
        for index in range(n):
            config = GenerationConfig(
                max_new_tokens=max_tokens,
                strategy="greedy" if temperature == 0.0 else "sample",
                temperature=max(temperature, 1e-6) if temperature else 1.0,
                top_p=top_p,
                stop_ids=(tokenizer.vocab.eos_id,),
                seed=seed + index,
            )
            out_ids = generate(model, prompt_ids, config, constraint)
            completion_tokens += len(out_ids)
            text = tokenizer.decode(out_ids)
            finish_reason = "length" if len(out_ids) >= max_tokens else "stop"
            for stop_string in stop:
                cut = text.find(stop_string)
                if cut >= 0:
                    text = text[:cut]
                    finish_reason = "stop"
            choices.append(
                CompletionChoice(text=text.strip(), index=index, finish_reason=finish_reason)
            )
        self._requests_served += 1
        return CompletionResponse(
            engine=engine,
            choices=choices,
            usage=Usage(
                prompt_tokens=len(prompt_ids), completion_tokens=completion_tokens
            ),
        )

    @property
    def requests_served(self) -> int:
        return self._requests_served
