"""Task pipelines: the local-library access channel (HuggingFace style).

``pipeline(task, model, tokenizer)`` returns a callable specialized for
the task, hiding tokenization and decoding — the exact usage pattern the
tutorial demonstrates for the Transformers library.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.autograd import no_grad
from repro.errors import ModelError
from repro.generation import GenerationConfig, generate_text
from repro.models import BERTModel, GPTModel, SequenceClassifier
from repro.tokenizers import Tokenizer


class Pipeline(ABC):
    """Base pipeline: a callable bound to a model + tokenizer."""

    task: str = ""

    def __init__(self, tokenizer: Tokenizer) -> None:
        self.tokenizer = tokenizer

    @abstractmethod
    def __call__(self, *args: object, **kwargs: object) -> object:
        """Run the task."""


class TextGenerationPipeline(Pipeline):
    """Complete a text prefix with a causal LM."""

    task = "text-generation"

    def __init__(self, model: GPTModel, tokenizer: Tokenizer) -> None:
        super().__init__(tokenizer)
        self.model = model

    def __call__(
        self,
        prompt: str,
        max_new_tokens: int = 16,
        temperature: float = 1.0,
        do_sample: bool = False,
        seed: int = 0,
    ) -> str:
        config = GenerationConfig(
            max_new_tokens=max_new_tokens,
            strategy="sample" if do_sample else "greedy",
            temperature=temperature,
            seed=seed,
        )
        return generate_text(self.model, self.tokenizer, prompt, config)


@dataclass(frozen=True)
class MaskFill:
    """One fill-mask candidate."""

    token: str
    score: float
    sequence: str


class FillMaskPipeline(Pipeline):
    """Fill ``[MASK]`` positions with a BERT-style model."""

    task = "fill-mask"

    def __init__(self, model: BERTModel, tokenizer: Tokenizer) -> None:
        super().__init__(tokenizer)
        self.model = model

    def __call__(self, text: str, top_k: int = 5) -> List[MaskFill]:
        mask_token = self.tokenizer.vocab.specials.mask
        if mask_token not in text:
            raise ModelError(f"input must contain the mask token {mask_token!r}")
        # Tokenize around the mask so it survives as a single token.
        before, _, after = text.partition(mask_token)
        ids = (
            self.tokenizer.encode(before).ids
            + [self.tokenizer.vocab.mask_id]
            + self.tokenizer.encode(after).ids
        )
        mask_position = len(self.tokenizer.encode(before).ids)
        with no_grad():
            logits = self.model(np.array([ids], dtype=np.int64))
        row = logits.data[0, mask_position]
        probs = np.exp(row - row.max())
        probs = probs / probs.sum()
        ranked = np.argsort(-probs)[:top_k]
        results = []
        for token_id in ranked:
            token = self.tokenizer.vocab.token_of(int(token_id))
            filled = text.replace(mask_token, token)
            results.append(
                MaskFill(token=token, score=float(probs[token_id]), sequence=filled)
            )
        return results


class TextClassificationPipeline(Pipeline):
    """Classify text with a fine-tuned :class:`SequenceClassifier`."""

    task = "text-classification"

    def __init__(
        self,
        classifier: SequenceClassifier,
        tokenizer: Tokenizer,
        labels: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(tokenizer)
        self.classifier = classifier
        self.labels = list(labels) if labels else [
            f"LABEL_{i}" for i in range(classifier.num_classes)
        ]
        if len(self.labels) != classifier.num_classes:
            raise ModelError(
                f"{len(self.labels)} labels for {classifier.num_classes} classes"
            )

    def __call__(self, text: str) -> Dict[str, Union[str, float]]:
        max_len = self.classifier.backbone.config.max_seq_len
        enc = self.tokenizer.encode(text, max_length=max_len)
        with no_grad():
            logits = self.classifier(np.array([enc.ids], dtype=np.int64))
        row = logits.data[0]
        probs = np.exp(row - row.max())
        probs = probs / probs.sum()
        best = int(np.argmax(probs))
        return {"label": self.labels[best], "score": float(probs[best])}


class FeatureExtractionPipeline(Pipeline):
    """Produce sentence embeddings from a BERT-style encoder."""

    task = "feature-extraction"

    def __init__(self, model: BERTModel, tokenizer: Tokenizer) -> None:
        super().__init__(tokenizer)
        self.model = model

    def __call__(self, texts: Union[str, Sequence[str]]) -> np.ndarray:
        if isinstance(texts, str):
            texts = [texts]
        max_len = self.model.config.max_seq_len
        width = max(
            min(len(self.tokenizer.encode(t).ids), max_len) for t in texts
        )
        width = max(width, 1)
        encodings = [
            self.tokenizer.encode(t, max_length=width, pad_to=width) for t in texts
        ]
        ids = np.array([e.ids for e in encodings], dtype=np.int64)
        mask = np.array([e.attention_mask for e in encodings], dtype=np.int64)
        return self.model.embed_texts(ids, mask)


_TASKS = {
    "text-generation": (TextGenerationPipeline, GPTModel),
    "fill-mask": (FillMaskPipeline, BERTModel),
    "feature-extraction": (FeatureExtractionPipeline, BERTModel),
}


def pipeline(task: str, model: object, tokenizer: Tokenizer, **kwargs: object) -> Pipeline:
    """Instantiate a task pipeline (HuggingFace-style factory).

    Supported tasks: ``text-generation``, ``fill-mask``,
    ``feature-extraction``, and ``text-classification`` (which expects a
    :class:`SequenceClassifier` as the model).
    """
    if task == "text-classification":
        if not isinstance(model, SequenceClassifier):
            raise ModelError("text-classification expects a SequenceClassifier")
        return TextClassificationPipeline(model, tokenizer, **kwargs)
    try:
        pipeline_cls, expected = _TASKS[task]
    except KeyError:
        raise ModelError(
            f"unknown task {task!r}; supported: "
            f"{sorted(_TASKS) + ['text-classification']}"
        ) from None
    if not isinstance(model, expected):
        raise ModelError(
            f"task {task!r} expects a {expected.__name__}, got {type(model).__name__}"
        )
    return pipeline_cls(model, tokenizer, **kwargs)
