"""Access channels for language models (Section 2.4 of the tutorial).

Two idioms are provided, matching the two channels the tutorial
demonstrates:

* :func:`pipeline` — a local-library facade in the style of the
  HuggingFace Transformers library.
* :class:`CompletionClient` — a remote-API style client in the style of
  the OpenAI API (engines addressed by name, ``complete()`` calls
  returning structured responses with usage accounting).
"""

from repro.api.hub import ModelHub, bootstrap_hub
from repro.api.pipelines import (
    FeatureExtractionPipeline,
    FillMaskPipeline,
    Pipeline,
    TextClassificationPipeline,
    TextGenerationPipeline,
    pipeline,
)
from repro.api.client import (
    CompletionChoice,
    CompletionClient,
    CompletionResponse,
    EngineStats,
    Usage,
)

__all__ = [
    "ModelHub",
    "bootstrap_hub",
    "pipeline",
    "Pipeline",
    "TextGenerationPipeline",
    "FillMaskPipeline",
    "TextClassificationPipeline",
    "FeatureExtractionPipeline",
    "CompletionClient",
    "CompletionResponse",
    "CompletionChoice",
    "EngineStats",
    "Usage",
]
