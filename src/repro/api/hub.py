"""A model hub: named (model, tokenizer) pairs, like a local model cache."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from repro.errors import ModelError
from repro.models import BERTModel, GPTModel, ModelConfig
from repro.tokenizers import Tokenizer, WhitespaceTokenizer
from repro.training import pretrain_clm, pretrain_mlm
from repro.utils.corpus import synthetic_db_corpus

AnyModel = Union[GPTModel, BERTModel]


@dataclass
class HubEntry:
    """One named model with its paired tokenizer."""

    model: AnyModel
    tokenizer: Tokenizer


class ModelHub:
    """Registry mapping engine names to models + tokenizers.

    Mirrors the role of a local model cache: pipelines and the
    OpenAI-style client resolve engine names through a hub.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, HubEntry] = {}

    def register(self, name: str, model: AnyModel, tokenizer: Tokenizer) -> None:
        """Register a model under ``name`` (replacing any previous entry)."""
        if not tokenizer.is_trained:
            raise ModelError(f"tokenizer for {name!r} is not trained")
        self._entries[name] = HubEntry(model=model, tokenizer=tokenizer)

    def get(self, name: str) -> HubEntry:
        """Resolve an engine name."""
        try:
            return self._entries[name]
        except KeyError:
            raise ModelError(
                f"unknown engine {name!r}; registered: {sorted(self._entries)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # -- persistence ---------------------------------------------------------
    def save(self, directory: "Path | str") -> "Path":
        """Write every entry (model + tokenizer) into a directory."""
        from pathlib import Path

        from repro.models import save_model
        from repro.tokenizers import save_tokenizer

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for name, entry in self._entries.items():
            save_model(entry.model, directory / f"{name}.model.npz")
            save_tokenizer(entry.tokenizer, directory / f"{name}.tokenizer.json")
        return directory

    @classmethod
    def load(cls, directory: "Path | str") -> "ModelHub":
        """Rebuild a hub from a directory written by :meth:`save`."""
        from pathlib import Path

        from repro.models import load_model
        from repro.tokenizers import load_tokenizer

        directory = Path(directory)
        hub = cls()
        for model_path in sorted(directory.glob("*.model.npz")):
            name = model_path.name[: -len(".model.npz")]
            tokenizer_path = directory / f"{name}.tokenizer.json"
            if not tokenizer_path.exists():
                raise ModelError(f"missing tokenizer for hub entry {name!r}")
            hub.register(name, load_model(model_path), load_tokenizer(tokenizer_path))
        if not hub.names():
            raise ModelError(f"no hub entries found in {directory}")
        return hub


def bootstrap_hub(
    seed: int = 0, steps: int = 80, corpus_docs: int = 80
) -> ModelHub:
    """Build a hub with two small pre-trained models.

    Registers ``"tiny-gpt"`` (causal, for generation/completion) and
    ``"tiny-bert"`` (bidirectional, for fill-mask and embeddings), both
    pre-trained on the built-in synthetic corpus. Takes a few seconds.
    """
    corpus = synthetic_db_corpus(num_docs=corpus_docs, seed=seed + 7)
    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(corpus, vocab_size=512)

    gpt = GPTModel(ModelConfig.small(vocab_size=tokenizer.vocab_size), seed=seed)
    pretrain_clm(gpt, tokenizer, corpus, steps=steps, seed=seed)

    bert = BERTModel(
        ModelConfig.small(vocab_size=tokenizer.vocab_size, causal=False), seed=seed
    )
    pretrain_mlm(bert, tokenizer, corpus, steps=steps, seed=seed)

    hub = ModelHub()
    hub.register("tiny-gpt", gpt, tokenizer)
    hub.register("tiny-bert", bert, tokenizer)
    return hub
