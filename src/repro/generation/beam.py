"""Beam search decoding (length-normalized log-probability scoring)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.autograd import no_grad
from repro.errors import GenerationError
from repro.generation.decoding import TokenConstraint
from repro.models.gpt import GPTModel


@dataclass
class _Beam:
    ids: List[int]          # newly generated ids only
    log_prob: float
    finished: bool = False

    def score(self, length_penalty: float) -> float:
        length = max(len(self.ids), 1)
        return self.log_prob / (length**length_penalty)


def beam_search(
    model: GPTModel,
    prompt_ids: Sequence[int],
    num_beams: int = 4,
    max_new_tokens: int = 32,
    stop_ids: Sequence[int] = (),
    length_penalty: float = 0.7,
    constraint: Optional[TokenConstraint] = None,
) -> List[int]:
    """Return the best generated id sequence by beam search.

    Beams that emit a stop token are frozen; search ends when every beam
    is finished or the token budget is exhausted.
    """
    if num_beams <= 0:
        raise GenerationError("num_beams must be positive")
    if not prompt_ids:
        raise GenerationError("prompt must contain at least one token")
    model.eval()
    stop_set = set(stop_ids)
    beams = [_Beam(ids=[], log_prob=0.0)]

    for _ in range(max_new_tokens):
        if all(b.finished for b in beams):
            break
        candidates: List[_Beam] = []
        for beam in beams:
            if beam.finished:
                candidates.append(beam)
                continue
            window = (list(prompt_ids) + beam.ids)[-model.config.max_seq_len:]
            with no_grad():
                logits = model(np.array([window], dtype=np.int64))
            log_probs = _log_softmax(logits.data[0, -1])

            allowed: Optional[Sequence[int]] = None
            if constraint is not None:
                allowed = constraint.allowed_tokens(beam.ids)
                if allowed is not None and len(allowed) == 0:
                    beam.finished = True
                    candidates.append(beam)
                    continue
            if allowed is not None:
                pool = np.asarray(list(allowed), dtype=np.int64)
            else:
                pool = np.argsort(-log_probs)[: num_beams * 2]

            ranked = pool[np.argsort(-log_probs[pool])][: num_beams * 2]
            for token in ranked:
                token = int(token)
                new_beam = _Beam(
                    ids=beam.ids + [token],
                    log_prob=beam.log_prob + float(log_probs[token]),
                    finished=token in stop_set,
                )
                if new_beam.finished:
                    new_beam.ids = new_beam.ids[:-1]  # drop the stop token
                candidates.append(new_beam)
        candidates.sort(key=lambda b: -b.score(length_penalty))
        beams = candidates[:num_beams]

    best = max(beams, key=lambda b: b.score(length_penalty))
    return best.ids


def _log_softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max()
    return shifted - np.log(np.exp(shifted).sum())
