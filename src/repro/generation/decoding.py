"""Autoregressive decoding for causal language models.

Implements the strategies the tutorial demonstrates with the OpenAI API:
greedy decoding, temperature sampling, top-k and nucleus (top-p)
filtering, stop sequences, and a hook for *constrained* decoding — the
PICARD idea [69] of masking away tokens that would make the output
syntactically invalid (used heavily by the text-to-SQL subsystem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

import numpy as np

from repro.autograd import no_grad
from repro.errors import GenerationError
from repro.models.gpt import GPTModel
from repro.nn.attention import causal_mask
from repro.tokenizers import Tokenizer
from repro.utils.rng import SeededRNG


class TokenConstraint(Protocol):
    """Restricts which tokens may follow a given generated prefix."""

    def allowed_tokens(self, generated_ids: Sequence[int]) -> Optional[Sequence[int]]:
        """Return permitted next-token ids, or ``None`` for "no restriction".

        ``generated_ids`` contains only the *newly generated* ids (the
        prompt is not included). Returning an empty sequence aborts
        generation.
        """
        ...


@dataclass
class GenerationConfig:
    """Decoding hyper-parameters.

    Attributes:
        max_new_tokens: hard cap on generated tokens.
        strategy: one of ``greedy``, ``sample``.
        temperature: softmax temperature for sampling (ignored by greedy).
        top_k: if > 0, sample only among the k most likely tokens.
        top_p: if < 1, sample from the smallest set with cumulative
            probability >= top_p (nucleus sampling).
        stop_ids: token ids that end generation (e.g. ``[EOS]``).
        seed: RNG seed for sampling.
    """

    max_new_tokens: int = 32
    strategy: str = "greedy"
    temperature: float = 1.0
    top_k: int = 0
    top_p: float = 1.0
    stop_ids: tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in ("greedy", "sample"):
            raise GenerationError(f"unknown strategy {self.strategy!r}")
        if self.max_new_tokens <= 0:
            raise GenerationError("max_new_tokens must be positive")
        if self.temperature <= 0:
            raise GenerationError("temperature must be positive")
        if not 0.0 < self.top_p <= 1.0:
            raise GenerationError("top_p must be in (0, 1]")
        if self.top_k < 0:
            raise GenerationError("top_k must be >= 0")


def generate(
    model: GPTModel,
    prompt_ids: Sequence[int],
    config: Optional[GenerationConfig] = None,
    constraint: Optional[TokenConstraint] = None,
    use_cache: bool = True,
) -> List[int]:
    """Generate token ids continuing ``prompt_ids``.

    Returns only the newly generated ids (without the prompt). The
    context window slides if the sequence would exceed the model's
    ``max_seq_len``.

    ``use_cache=True`` (the default) reuses per-layer key/value caches
    (the standard incremental-decoding optimization): the prompt is
    primed with one chunked causal forward and each step then costs
    O(context) attention instead of a full O(context^2) re-encode,
    producing the same greedy token sequences. The cached path requires
    the whole sequence to fit the context window; otherwise it falls
    back to the sliding-window re-encode automatically.
    """
    config = config or GenerationConfig()
    if not prompt_ids:
        raise GenerationError("prompt must contain at least one token")
    fits = len(prompt_ids) + config.max_new_tokens <= model.config.max_seq_len
    if use_cache and fits:
        return _generate_cached(model, prompt_ids, config, constraint)
    return _generate_recompute(model, prompt_ids, config, constraint)


def _generate_recompute(
    model: GPTModel,
    prompt_ids: Sequence[int],
    config: GenerationConfig,
    constraint: Optional[TokenConstraint],
) -> List[int]:
    rng = SeededRNG(config.seed)
    ids = list(prompt_ids)
    generated: List[int] = []
    model.eval()

    for _ in range(config.max_new_tokens):
        window = ids[-model.config.max_seq_len:]
        with no_grad():
            logits = model(np.array([window], dtype=np.int64))
        next_logits = logits.data[0, -1].copy()
        next_id = _next_token(next_logits, generated, config, constraint, rng)
        if next_id is None or next_id in config.stop_ids:
            break
        generated.append(next_id)
        ids.append(next_id)
    return generated


def _generate_cached(
    model: GPTModel,
    prompt_ids: Sequence[int],
    config: GenerationConfig,
    constraint: Optional[TokenConstraint],
) -> List[int]:
    rng = SeededRNG(config.seed)
    model.eval()
    caches = model.init_cache()
    generated: List[int] = []

    with no_grad():
        # Chunked causal prefill: one forward over the whole prompt with
        # an in-chunk causal mask, instead of priming one token at a time.
        length = len(prompt_ids)
        prompt = np.array([prompt_ids], dtype=np.int64)
        positions = np.arange(length)[None, :]
        blocked = causal_mask(length)[None, None, :, :]
        logits = model.forward_chunk(prompt, positions, caches, blocked=blocked)
        next_logits = logits.data[0, -1].copy()

        position = length
        for _ in range(config.max_new_tokens):
            next_id = _next_token(next_logits, generated, config, constraint, rng)
            if next_id is None or next_id in config.stop_ids:
                break
            generated.append(next_id)
            logits = model.forward_incremental(
                np.array([[next_id]], dtype=np.int64), position, caches
            )
            next_logits = logits.data[0, -1].copy()
            position += 1
    return generated


def _next_token(
    next_logits: np.ndarray,
    generated: List[int],
    config: GenerationConfig,
    constraint: Optional[TokenConstraint],
    rng: SeededRNG,
) -> Optional[int]:
    """Apply the constraint mask and pick the next id (None = abort)."""
    if constraint is not None:
        allowed = constraint.allowed_tokens(generated)
        if allowed is not None:
            if len(allowed) == 0:
                return None
            mask = np.full_like(next_logits, -np.inf)
            allowed_arr = np.asarray(list(allowed), dtype=np.int64)
            mask[allowed_arr] = 0.0
            next_logits = next_logits + mask
    return _pick_token(next_logits, config, rng)


#: absolute slack when comparing a probability cumsum against top_p —
#: far above float64 accumulation error over any realistic vocab
#: (~1e-13 worst case), far below any meaningful top_p difference.
_TOP_P_TOLERANCE = 1e-9


def _pick_token(logits: np.ndarray, config: GenerationConfig, rng: SeededRNG) -> int:
    """Select one token id from a logit vector per the configured strategy."""
    if config.strategy == "greedy":
        return int(np.argmax(logits))

    scaled = logits / config.temperature
    if 0 < config.top_k < scaled.size:
        # Keep exactly k tokens. A cutoff comparison (scaled < cutoff)
        # would keep *every* token tied at the cutoff value, letting more
        # than k survive; a stable sort instead breaks score ties
        # deterministically in favour of the lowest token id.
        keep = np.argsort(-scaled, kind="stable")[: config.top_k]
        filtered = np.full_like(scaled, -np.inf)
        filtered[keep] = scaled[keep]
        scaled = filtered
    probs = _stable_softmax(scaled)
    if config.top_p < 1.0:
        order = np.argsort(-probs)
        cumulative = np.cumsum(probs[order])
        # Boundary rule: the nucleus is the smallest prefix whose
        # cumulative probability reaches top_p, where "reaches" is
        # judged with a tolerance — a cumsum that lands within
        # _TOP_P_TOLERANCE below top_p (pure float accumulation error,
        # e.g. 0.3+0.3+0.3 == 0.8999999999999999) counts as having
        # reached it. Without the clamp the keep-count flips by one
        # token depending on rounding direction, changing sampled
        # output across platforms.
        keep_count = int(
            np.searchsorted(cumulative, config.top_p - _TOP_P_TOLERANCE) + 1
        )
        keep = order[:keep_count]
        filtered = np.zeros_like(probs)
        filtered[keep] = probs[keep]
        probs = filtered / filtered.sum()
    return int(rng.generator.choice(len(probs), p=probs))


def _stable_softmax(x: np.ndarray) -> np.ndarray:
    finite_max = np.max(x[np.isfinite(x)]) if np.isfinite(x).any() else 0.0
    exp = np.exp(np.clip(x - finite_max, -700, 0))
    exp[~np.isfinite(x)] = 0.0
    total = exp.sum()
    if total <= 0:
        raise GenerationError("all tokens were filtered out during sampling")
    return exp / total


def generate_text(
    model: GPTModel,
    tokenizer: Tokenizer,
    prompt: str,
    config: Optional[GenerationConfig] = None,
    constraint: Optional[TokenConstraint] = None,
    use_cache: bool = True,
) -> str:
    """Convenience wrapper: text in, text out, stopping at ``[EOS]``.

    Decodes with the KV cache by default (sequences that do not fit the
    context window fall back to the sliding-window re-encode).
    """
    config = config or GenerationConfig()
    if not config.stop_ids:
        config = GenerationConfig(
            max_new_tokens=config.max_new_tokens,
            strategy=config.strategy,
            temperature=config.temperature,
            top_k=config.top_k,
            top_p=config.top_p,
            stop_ids=(tokenizer.vocab.eos_id,),
            seed=config.seed,
        )
    prompt_ids = tokenizer.encode(prompt, add_bos=True).ids
    out_ids = generate(model, prompt_ids, config, constraint, use_cache=use_cache)
    return tokenizer.decode(out_ids)
