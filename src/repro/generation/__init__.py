"""Text generation: decoding strategies and constrained decoding hooks."""

from repro.generation.decoding import (
    GenerationConfig,
    TokenConstraint,
    generate,
    generate_text,
)
from repro.generation.beam import beam_search

__all__ = [
    "GenerationConfig",
    "TokenConstraint",
    "generate",
    "generate_text",
    "beam_search",
]
